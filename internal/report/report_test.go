package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22222")
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: both rows start their second column at the same
	// offset.
	i1 := strings.Index(lines[3], "1")
	i2 := strings.Index(lines[4], "22222")
	if i1 != i2 {
		t.Errorf("columns misaligned: %d vs %d", i1, i2)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.AddRow("x", "extra", "more")
	out := tb.Render()
	if !strings.Contains(out, "more") {
		t.Error("ragged rows should still render")
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{
		Title:  "energy",
		Unit:   "J",
		Series: []string{"EEMP", "TEEM"},
		Groups: []BarGroup{
			{Label: "CV", Values: []float64{400, 300}},
			{Label: "SR", Values: []float64{260, 220}},
		},
		Width: 20,
	}
	out := c.Render()
	for _, want := range []string{"energy", "CV", "SR", "EEMP", "TEEM", "#", "400.0 J"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The larger value gets the longer bar.
	lines := strings.Split(out, "\n")
	var eempBar, teemBar int
	for _, l := range lines {
		if strings.Contains(l, "400.0") {
			eempBar = strings.Count(l, "#")
		}
		if strings.Contains(l, "300.0") {
			teemBar = strings.Count(l, "#")
		}
	}
	if eempBar <= teemBar {
		t.Errorf("bar lengths wrong: %d vs %d", eempBar, teemBar)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := &BarChart{Series: []string{"a"}, Groups: []BarGroup{{Label: "x", Values: []float64{0}}}}
	if out := c.Render(); !strings.Contains(out, "0.0") {
		t.Error("zero-value chart should render")
	}
}

func TestScatterMatrix(t *testing.T) {
	sm := &ScatterMatrix{
		Names: []string{"M", "AT"},
		Cols: [][]float64{
			{1, 2, 3, 4},
			{90, 88, 86, 84},
		},
	}
	out := sm.Render()
	if !strings.Contains(out, "M") || !strings.Contains(out, "AT") {
		t.Error("diagonal labels missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no scatter points rendered")
	}
	empty := &ScatterMatrix{}
	if out := empty.Render(); !strings.Contains(out, "empty") {
		t.Error("empty matrix should render placeholder")
	}
}

func TestResidualPlot(t *testing.T) {
	fitted := []float64{1, 2, 3, 4, 5}
	resid := []float64{0.1, -0.2, 0.05, -0.1, 0.15}
	out := ResidualPlot(fitted, resid, 40, 10)
	if !strings.Contains(out, "Residuals vs Fitted") || !strings.Contains(out, "*") {
		t.Errorf("residual plot incomplete:\n%s", out)
	}
	// Zero line marked when residuals straddle zero.
	if !strings.Contains(out, "0 |") {
		t.Error("zero line not marked")
	}
	if out := ResidualPlot(nil, nil, 10, 5); !strings.Contains(out, "empty") {
		t.Error("empty input should render placeholder")
	}
}

func TestPctAndImprovement(t *testing.T) {
	if got := Pct(0.155); got != "+15.50%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.05); got != "-5.00%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Improvement(100, 80); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Improvement = %g", got)
	}
	if got := Improvement(0, 10); got != 0 {
		t.Errorf("Improvement with zero base = %g", got)
	}
}
