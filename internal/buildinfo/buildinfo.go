// Package buildinfo carries the build identity every cmd/* binary prints
// for -version: version, commit and build date. The values are injected
// at link time; a plain `go build` falls back to the VCS metadata the Go
// toolchain embeds, so even an unstamped binary names its commit.
//
// Stamp a release build with:
//
//	go build -ldflags "\
//	  -X teem/internal/buildinfo.Version=v1.2.3 \
//	  -X teem/internal/buildinfo.Commit=$(git rev-parse --short HEAD) \
//	  -X teem/internal/buildinfo.Date=$(date -u +%Y-%m-%dT%H:%M:%SZ)" ./cmd/...
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Link-time variables (see the package comment for the -ldflags recipe).
var (
	// Version is the semantic version of the build ("dev" when unset).
	Version = "dev"
	// Commit is the VCS revision the binary was built from.
	Commit = ""
	// Date is the UTC build timestamp.
	Date = ""
)

// String renders the one-line version banner of the named binary, e.g.
//
//	teemd dev (commit 1a2b3c4, built 2026-07-28T00:00:00Z, go1.24.0)
//
// Unstamped fields fall back to the toolchain's embedded VCS metadata and
// finally to "unknown", so the line is always complete.
func String(binary string) string {
	commit, date := Commit, Date
	if commit == "" || date == "" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					if commit == "" && len(s.Value) >= 7 {
						commit = s.Value[:7]
					}
				case "vcs.time":
					if date == "" {
						date = s.Value
					}
				}
			}
		}
	}
	if commit == "" {
		commit = "unknown"
	}
	if date == "" {
		date = "unknown"
	}
	return fmt.Sprintf("%s %s (commit %s, built %s, %s)", binary, Version, commit, date, runtime.Version())
}
