package buildinfo

import (
	"strings"
	"testing"
)

func TestStringIsComplete(t *testing.T) {
	s := String("teemd")
	if !strings.HasPrefix(s, "teemd ") {
		t.Errorf("banner %q does not lead with the binary name", s)
	}
	for _, want := range []string{"commit ", "built ", "go"} {
		if !strings.Contains(s, want) {
			t.Errorf("banner %q lacks %q", s, want)
		}
	}
}

func TestStringUsesStampedValues(t *testing.T) {
	oldV, oldC, oldD := Version, Commit, Date
	defer func() { Version, Commit, Date = oldV, oldC, oldD }()
	Version, Commit, Date = "v9.9.9", "abc1234", "2026-07-28T00:00:00Z"
	s := String("teemsim")
	for _, want := range []string{"v9.9.9", "abc1234", "2026-07-28T00:00:00Z"} {
		if !strings.Contains(s, want) {
			t.Errorf("banner %q lacks stamped value %q", s, want)
		}
	}
}
