package regress

import "testing"

// BenchmarkFit measures a paper-sized OLS fit (17 observations, 4
// predictors) with the full R-style summary statistics.
func BenchmarkFit(b *testing.B) {
	n := 17
	ds := &Dataset{
		ResponseName:   "M",
		PredictorNames: []string{"AT", "ET", "PT", "EC"},
		Predictors:     make([][]float64, 4),
	}
	for i := 0; i < n; i++ {
		x := float64(i)
		j1 := float64((i*7)%5) / 10 // deterministic jitter breaks collinearity
		j2 := float64((i*3)%7) / 10
		ds.Response = append(ds.Response, 2+0.4*x+j1)
		ds.Predictors[0] = append(ds.Predictors[0], 85+0.3*x+j2)
		ds.Predictors[1] = append(ds.Predictors[1], 50-1.5*x+0.1*x*x)
		ds.Predictors[2] = append(ds.Predictors[2], 90+0.28*x+j1*j2)
		ds.Predictors[3] = append(ds.Predictors[3], 400-9*x+j2*3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}
