package regress

import (
	"math"
	"testing"
)

// Orthogonal predictors have VIF ≈ 1.
func TestVIFOrthogonal(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{1, 2, 3, 4, 5, 6, 7, 8},
		PredictorNames: []string{"a", "b"},
		Predictors: [][]float64{
			{1, -1, 1, -1, 1, -1, 1, -1},
			{1, 1, -1, -1, 1, 1, -1, -1},
		},
	}
	v, err := VIF(d)
	if err != nil {
		t.Fatal(err)
	}
	for name, vif := range v {
		if math.Abs(vif-1) > 1e-9 {
			t.Errorf("VIF(%s) = %g, want 1 for orthogonal design", name, vif)
		}
	}
}

// Strongly correlated predictors have large VIF — the paper's AT↔PT and
// ET↔EC masking.
func TestVIFCollinear(t *testing.T) {
	n := 12
	at := make([]float64, n)
	pt := make([]float64, n)
	et := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		at[i] = 80 + x
		pt[i] = 84 + x + 0.05*float64((i*3)%4) // nearly AT + 4
		et[i] = 50 - 2*x
		y[i] = 2 + 0.3*x
	}
	d := &Dataset{
		ResponseName:   "M",
		Response:       y,
		PredictorNames: []string{"AT", "PT", "ET"},
		Predictors:     [][]float64{at, pt, et},
	}
	v, err := VIF(d)
	if err != nil {
		t.Fatal(err)
	}
	if v["AT"] < 10 || v["PT"] < 10 {
		t.Errorf("collinear AT/PT should have VIF ≥ 10, got %g/%g", v["AT"], v["PT"])
	}
}

func TestVIFExactCollinearityIsInf(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{1, 2, 3, 4, 5},
		PredictorNames: []string{"a", "b"},
		Predictors: [][]float64{
			{1, 2, 3, 4, 5},
			{2, 4, 6, 8, 10}, // exactly 2a
		},
	}
	v, err := VIF(d)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v["a"], 1) || !math.IsInf(v["b"], 1) {
		t.Errorf("exact collinearity should give infinite VIF, got %v", v)
	}
}

func TestVIFNeedsTwoPredictors(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{1, 2, 3},
		PredictorNames: []string{"a"},
		Predictors:     [][]float64{{1, 2, 3}},
	}
	if _, err := VIF(d); err == nil {
		t.Error("VIF with one predictor should error")
	}
}

func TestCorrelations(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{1, 2, 3, 4},
		PredictorNames: []string{"up", "down"},
		Predictors: [][]float64{
			{2, 4, 6, 8},
			{8, 6, 4, 2},
		},
	}
	c, err := Correlations(d)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := c.Of("y", "up"); math.Abs(r-1) > 1e-12 {
		t.Errorf("corr(y, up) = %g, want 1", r)
	}
	if r, _ := c.Of("y", "down"); math.Abs(r+1) > 1e-12 {
		t.Errorf("corr(y, down) = %g, want -1", r)
	}
	if r, _ := c.Of("up", "up"); r != 1 {
		t.Errorf("diagonal = %g", r)
	}
	if _, err := c.Of("y", "zz"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestConfInt(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{2.1, 3.9, 6.2, 7.8, 10.1},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2, 3, 4, 5}},
	}
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := m.ConfInt("x", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Slope 1.99, SE 0.059722, t(0.975, 3) ≈ 3.1824:
	// CI ≈ 1.99 ± 0.19006.
	if math.Abs(lo-(1.99-0.19006)) > 1e-3 || math.Abs(hi-(1.99+0.19006)) > 1e-3 {
		t.Errorf("CI = [%g, %g], want ≈[1.7999, 2.1801]", lo, hi)
	}
	if lo >= hi {
		t.Error("interval inverted")
	}
	if _, _, err := m.ConfInt("zz", 0.05); err == nil {
		t.Error("unknown coefficient should error")
	}
	if _, _, err := m.ConfInt("x", 1.5); err == nil {
		t.Error("invalid alpha should error")
	}
}

// The profiling-shaped collinearity story end to end: in a dataset where
// PT tracks AT and EC tracks ET, VIF flags PT/EC and the reduced model
// keeps its significance.
func TestCollinearityWorkflow(t *testing.T) {
	n := 16
	ds := &Dataset{
		ResponseName:   "M",
		PredictorNames: []string{"AT", "ET", "PT", "EC"},
		Predictors:     make([][]float64, 4),
	}
	for i := 0; i < n; i++ {
		x := float64(i)
		jit := float64((i*5)%3) / 5
		at := 82 + 0.6*x + jit
		et := 60 - 2.2*x + 0.05*x*x
		ds.Response = append(ds.Response, 2+0.35*x+jit/3)
		ds.Predictors[0] = append(ds.Predictors[0], at)
		ds.Predictors[1] = append(ds.Predictors[1], et)
		ds.Predictors[2] = append(ds.Predictors[2], at+4+jit/2)
		ds.Predictors[3] = append(ds.Predictors[3], 9*et+30+jit)
	}
	v, err := VIF(ds)
	if err != nil {
		t.Fatal(err)
	}
	if v["PT"] < 5 || v["EC"] < 5 {
		t.Errorf("PT/EC should be flagged collinear: VIF %g/%g", v["PT"], v["EC"])
	}
	reduced, err := ds.Select("AT", "ET")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(reduced)
	if err != nil {
		t.Fatal(err)
	}
	if m.RSquared < 0.9 {
		t.Errorf("reduced model R² = %g, want > 0.9", m.RSquared)
	}
}
