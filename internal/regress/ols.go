package regress

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"teem/internal/stats"
)

// Dataset is a named regression dataset: one response column and any number
// of predictor columns, all of equal length.
type Dataset struct {
	// ResponseName labels the response variable (e.g. "M").
	ResponseName string
	// Response holds the observed response values.
	Response []float64
	// PredictorNames labels the predictor columns (e.g. AT, ET, PT, EC).
	PredictorNames []string
	// Predictors holds one slice per predictor, each len(Response) long.
	Predictors [][]float64
}

// Validate reports an error if the dataset is malformed.
func (d *Dataset) Validate() error {
	n := len(d.Response)
	if n == 0 {
		return errors.New("regress: dataset has no observations")
	}
	if len(d.PredictorNames) != len(d.Predictors) {
		return errors.New("regress: predictor names/columns length mismatch")
	}
	for i, col := range d.Predictors {
		if len(col) != n {
			return fmt.Errorf("regress: predictor %q has %d values, want %d", d.PredictorNames[i], len(col), n)
		}
	}
	return nil
}

// N returns the number of observations.
func (d *Dataset) N() int { return len(d.Response) }

// Select returns a new dataset keeping only the named predictors, in the
// given order. Unknown names are an error.
func (d *Dataset) Select(names ...string) (*Dataset, error) {
	out := &Dataset{
		ResponseName: d.ResponseName,
		Response:     append([]float64(nil), d.Response...),
	}
	for _, want := range names {
		found := false
		for i, have := range d.PredictorNames {
			if have == want {
				out.PredictorNames = append(out.PredictorNames, have)
				out.Predictors = append(out.Predictors, append([]float64(nil), d.Predictors[i]...))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("regress: unknown predictor %q", want)
		}
	}
	return out, nil
}

// Log10Response returns a copy of the dataset with the response replaced by
// log10(response), as in the paper's transformed model (Eq. 6). Responses
// must be strictly positive.
func (d *Dataset) Log10Response() (*Dataset, error) {
	out := &Dataset{
		ResponseName:   "log(" + d.ResponseName + ")",
		Response:       make([]float64, len(d.Response)),
		PredictorNames: append([]string(nil), d.PredictorNames...),
	}
	for _, col := range d.Predictors {
		out.Predictors = append(out.Predictors, append([]float64(nil), col...))
	}
	for i, y := range d.Response {
		if y <= 0 {
			return nil, fmt.Errorf("regress: response %d is %g; log transform needs positive values", i, y)
		}
		out.Response[i] = math.Log10(y)
	}
	return out, nil
}

// DropRow returns a copy of the dataset without observation i.
func (d *Dataset) DropRow(i int) (*Dataset, error) {
	if i < 0 || i >= d.N() {
		return nil, fmt.Errorf("regress: DropRow index %d out of range [0,%d)", i, d.N())
	}
	out := &Dataset{
		ResponseName:   d.ResponseName,
		PredictorNames: append([]string(nil), d.PredictorNames...),
	}
	out.Response = append(append([]float64(nil), d.Response[:i]...), d.Response[i+1:]...)
	for _, col := range d.Predictors {
		out.Predictors = append(out.Predictors, append(append([]float64(nil), col[:i]...), col[i+1:]...))
	}
	return out, nil
}

// Coefficient is one row of the R-style coefficient table.
type Coefficient struct {
	// Name is "(Intercept)" or the predictor name.
	Name string
	// Estimate is the fitted coefficient.
	Estimate float64
	// StdError is the coefficient standard error.
	StdError float64
	// TValue is Estimate/StdError.
	TValue float64
	// PValue is the two-sided Pr(>|t|).
	PValue float64
}

// Signif returns the R significance code for the coefficient.
func (c Coefficient) Signif() string { return stats.SignifCode(c.PValue) }

// Model is a fitted ordinary-least-squares model together with the full
// R-style summary statistics.
type Model struct {
	// ResponseName and PredictorNames echo the dataset labels.
	ResponseName   string
	PredictorNames []string

	// Coefficients holds the intercept first, then one entry per
	// predictor in dataset order.
	Coefficients []Coefficient

	// Fitted and Residuals are per-observation.
	Fitted    []float64
	Residuals []float64

	// ResidualQuartiles is {min, 1Q, median, 3Q, max} of the residuals.
	ResidualQuartiles [5]float64

	// ResidualStdErr is the residual standard error on DFResidual
	// degrees of freedom.
	ResidualStdErr float64
	// DFResidual is n − p (p counts the intercept).
	DFResidual int
	// DFModel is the model degrees of freedom (number of predictors).
	DFModel int

	// RSquared and AdjRSquared are the multiple and adjusted R².
	RSquared    float64
	AdjRSquared float64

	// FStatistic is the overall regression F on (DFModel, DFResidual)
	// degrees of freedom, and FPValue its upper-tail p-value.
	FStatistic float64
	FPValue    float64
}

// Fit performs OLS with an intercept on the dataset.
func Fit(d *Dataset) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.N()
	p := len(d.Predictors) + 1 // +1 intercept
	if n <= p {
		return nil, fmt.Errorf("regress: %d observations cannot identify %d parameters", n, p)
	}

	x := NewMatrix(n, p)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		for j, col := range d.Predictors {
			x.Set(i, j+1, col[i])
		}
	}
	f, err := factorQR(x)
	if err != nil {
		return nil, err
	}
	beta := f.solve(d.Response)

	fitted := x.MulVec(beta)
	resid := make([]float64, n)
	rss := 0.0
	for i := range resid {
		resid[i] = d.Response[i] - fitted[i]
		rss += resid[i] * resid[i]
	}
	ybar := stats.Mean(d.Response)
	tss := 0.0
	for _, y := range d.Response {
		dy := y - ybar
		tss += dy * dy
	}
	if tss == 0 {
		return nil, errors.New("regress: response has zero variance")
	}

	dfRes := n - p
	dfMod := p - 1
	sigma2 := rss / float64(dfRes)
	xtxDiag := f.xtxInverseDiag()

	m := &Model{
		ResponseName:   d.ResponseName,
		PredictorNames: append([]string(nil), d.PredictorNames...),
		Fitted:         fitted,
		Residuals:      resid,
		ResidualStdErr: math.Sqrt(sigma2),
		DFResidual:     dfRes,
		DFModel:        dfMod,
		RSquared:       1 - rss/tss,
	}
	m.AdjRSquared = 1 - (1-m.RSquared)*float64(n-1)/float64(dfRes)
	if dfMod > 0 {
		m.FStatistic = (tss - rss) / float64(dfMod) / sigma2
		m.FPValue = stats.FTestPValue(m.FStatistic, float64(dfMod), float64(dfRes))
	}

	names := append([]string{"(Intercept)"}, d.PredictorNames...)
	for j, b := range beta {
		se := math.Sqrt(sigma2 * xtxDiag[j])
		t := b / se
		m.Coefficients = append(m.Coefficients, Coefficient{
			Name:     names[j],
			Estimate: b,
			StdError: se,
			TValue:   t,
			PValue:   stats.TTestPValue(t, float64(dfRes)),
		})
	}

	min, q1, med, q3, max, _ := stats.FiveNum(resid)
	m.ResidualQuartiles = [5]float64{min, q1, med, q3, max}
	return m, nil
}

// Coef returns the named coefficient ("(Intercept)" for the intercept) and
// whether it exists.
func (m *Model) Coef(name string) (Coefficient, bool) {
	for _, c := range m.Coefficients {
		if c.Name == name {
			return c, true
		}
	}
	return Coefficient{}, false
}

// Predict evaluates the fitted model on one observation given in predictor
// order.
func (m *Model) Predict(xs ...float64) (float64, error) {
	if len(xs) != len(m.PredictorNames) {
		return 0, fmt.Errorf("regress: Predict got %d values, want %d", len(xs), len(m.PredictorNames))
	}
	y := m.Coefficients[0].Estimate
	for i, x := range xs {
		y += m.Coefficients[i+1].Estimate * x
	}
	return y, nil
}

// MaxAbsResidualIndex returns the index of the observation with the largest
// absolute residual — the outlier-drop heuristic used between the paper's
// Table I and Table II fits.
func (m *Model) MaxAbsResidualIndex() int {
	best, bestV := 0, -1.0
	for i, r := range m.Residuals {
		if ar := math.Abs(r); ar > bestV {
			best, bestV = i, ar
		}
	}
	return best
}

// Summary formats the model exactly in the shape of R's summary.lm, as
// printed in the paper's Tables I and II.
func (m *Model) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Residuals:\n")
	fmt.Fprintf(&b, "     Min       1Q   Median       3Q      Max\n")
	fmt.Fprintf(&b, "%8.4f %8.4f %8.4f %8.4f %8.4f\n\n",
		m.ResidualQuartiles[0], m.ResidualQuartiles[1], m.ResidualQuartiles[2],
		m.ResidualQuartiles[3], m.ResidualQuartiles[4])
	fmt.Fprintf(&b, "Coefficients:\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %9s %12s\n", "", "Estimate", "Std. Error", "t value", "Pr(>|t|)")
	for _, c := range m.Coefficients {
		fmt.Fprintf(&b, "%-12s %12.6f %12.6f %9.3f %12.4g %s\n",
			c.Name, c.Estimate, c.StdError, c.TValue, c.PValue, c.Signif())
	}
	b.WriteString("---\nSignif. codes: 0 '***' 0.001 '**' 0.01 '*' 0.05 '.' 0.1 ' ' 1\n\n")
	fmt.Fprintf(&b, "Residual standard error: %.4g on %d degrees of freedom\n",
		m.ResidualStdErr, m.DFResidual)
	fmt.Fprintf(&b, "Multiple R-squared: %.4f, Adjusted R-squared: %.4f\n",
		m.RSquared, m.AdjRSquared)
	fmt.Fprintf(&b, "F-statistic: %.4g on %d and %d DF, p-value: %.4g\n",
		m.FStatistic, m.DFModel, m.DFResidual, m.FPValue)
	return b.String()
}
