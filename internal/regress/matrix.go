// Package regress implements ordinary least squares linear regression with
// the complete R summary.lm statistics (coefficient table with standard
// errors, t values and Pr(>|t|), residual quartiles, residual standard
// error, multiple and adjusted R², F statistic and its p-value).
//
// It reproduces the modelling workflow of the TEEM paper's offline phase:
// fit the full model M ~ AT + ET + PT + EC, observe collinearity masking,
// drop the masked predictors, log-transform the response, and refit
// (paper Tables I and II, Figs 3 and 4).
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("regress: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("regress: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ErrSingular is returned when the design matrix is (numerically) rank
// deficient.
var ErrSingular = errors.New("regress: design matrix is rank deficient")

// qrFactor holds a Householder QR factorisation in the packed JAMA form:
// Householder vectors below the diagonal of w, R strictly above it, and the
// diagonal of R in rdiag.
type qrFactor struct {
	w     *Matrix
	rdiag []float64
}

// factorQR computes the Householder QR factorisation of a copy of a.
// It returns ErrSingular if R has a (numerically) zero diagonal entry.
func factorQR(a *Matrix) (*qrFactor, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("regress: need at least as many rows (%d) as columns (%d)", a.Rows, a.Cols)
	}
	w := a.Clone()
	m, n := w.Rows, w.Cols
	rdiag := make([]float64, n)

	scale := 0.0
	for _, v := range w.Data {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	if scale == 0 {
		return nil, ErrSingular
	}
	tol := 1e-12 * scale * float64(m)

	for k := 0; k < n; k++ {
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, w.At(i, k))
		}
		if nrm <= tol {
			return nil, ErrSingular
		}
		if w.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			w.Set(i, k, w.At(i, k)/nrm)
		}
		w.Set(k, k, w.At(k, k)+1)
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += w.At(i, k) * w.At(i, j)
			}
			s = -s / w.At(k, k)
			for i := k; i < m; i++ {
				w.Set(i, j, w.At(i, j)+s*w.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &qrFactor{w: w, rdiag: rdiag}, nil
}

// solve returns the least-squares solution x minimising ‖a·x − b‖₂ where a
// is the matrix the factorisation was computed from.
func (q *qrFactor) solve(b []float64) []float64 {
	m, n := q.w.Rows, q.w.Cols
	if len(b) != m {
		panic("regress: solve dimension mismatch")
	}
	y := append([]float64(nil), b...)
	// y ← Qᵀ b.
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < m; i++ {
			s += q.w.At(i, k) * y[i]
		}
		s = -s / q.w.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * q.w.At(i, k)
		}
	}
	// Back substitution R x = y[:n].
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= q.w.At(k, j) * x[j]
		}
		x[k] = s / q.rdiag[k]
	}
	return x
}

// rInverse returns R⁻¹ as an n×n upper-triangular matrix.
func (q *qrFactor) rInverse() *Matrix {
	n := q.w.Cols
	inv := NewMatrix(n, n)
	for col := 0; col < n; col++ {
		// Solve R x = e_col by back substitution.
		for k := col; k >= 0; k-- {
			s := 0.0
			if k == col {
				s = 1
			}
			for j := k + 1; j <= col; j++ {
				s -= q.w.At(k, j) * inv.At(j, col)
			}
			inv.Set(k, col, s/q.rdiag[k])
		}
	}
	return inv
}

// xtxInverseDiag returns the diagonal of (XᵀX)⁻¹ = R⁻¹R⁻ᵀ, which scales the
// coefficient standard errors.
func (q *qrFactor) xtxInverseDiag() []float64 {
	n := q.w.Cols
	rinv := q.rInverse()
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for k := i; k < n; k++ {
			v := rinv.At(i, k)
			s += v * v
		}
		diag[i] = s
	}
	return diag
}
