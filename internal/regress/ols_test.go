package regress

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Exact-recovery test: data generated from a known linear law without noise
// must be recovered to machine precision.
func TestFitExactRecovery(t *testing.T) {
	// y = 2 + 3 x1 − 0.5 x2
	x1 := []float64{1, 2, 3, 4, 5, 6, 7}
	x2 := []float64{2, 1, 4, 3, 6, 5, 8}
	y := make([]float64, len(x1))
	for i := range y {
		y[i] = 2 + 3*x1[i] - 0.5*x2[i]
	}
	d := &Dataset{
		ResponseName:   "y",
		Response:       y,
		PredictorNames: []string{"x1", "x2"},
		Predictors:     [][]float64{x1, x2},
	}
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -0.5}
	for i, c := range m.Coefficients {
		if !almost(c.Estimate, want[i], 1e-9) {
			t.Errorf("coef %s = %g, want %g", c.Name, c.Estimate, want[i])
		}
	}
	if !almost(m.RSquared, 1, 1e-12) {
		t.Errorf("R² = %g, want 1", m.RSquared)
	}
	for _, r := range m.Residuals {
		if math.Abs(r) > 1e-9 {
			t.Errorf("residual %g should be ~0", r)
		}
	}
}

// Cross-check against the analytic simple-regression formulas (identical to
// R's lm) for x = 1..5, y = {2.1, 3.9, 6.2, 7.8, 10.1}:
// slope = Sxy/Sxx = 19.9/10 = 1.99, intercept = ȳ − b·x̄ = 0.05,
// RSS = 0.107, σ = √(0.107/3) = 0.188856,
// SE(b) = σ/√Sxx = 0.059722, SE(a) = σ·√(1/5 + x̄²/Sxx) = 0.198074,
// R² = 1 − 0.107/39.708 = 0.997305, F = 39.601/0.0356667 = 1110.3.
func TestFitMatchesAnalytic(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{2.1, 3.9, 6.2, 7.8, 10.1},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2, 3, 4, 5}},
	}
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	ic := m.Coefficients[0]
	sl := m.Coefficients[1]
	if !almost(ic.Estimate, 0.05, 1e-9) {
		t.Errorf("intercept = %g, want 0.05", ic.Estimate)
	}
	if !almost(sl.Estimate, 1.99, 1e-9) {
		t.Errorf("slope = %g, want 1.99", sl.Estimate)
	}
	if !almost(ic.StdError, 0.198074, 1e-5) {
		t.Errorf("intercept SE = %g, want ≈0.198074", ic.StdError)
	}
	if !almost(sl.StdError, 0.059722, 1e-5) {
		t.Errorf("slope SE = %g, want ≈0.059722", sl.StdError)
	}
	if m.DFResidual != 3 || m.DFModel != 1 {
		t.Errorf("df = (%d,%d), want (1,3)", m.DFModel, m.DFResidual)
	}
	if !almost(m.ResidualStdErr, 0.188856, 1e-5) {
		t.Errorf("residual SE = %g, want ≈0.188856", m.ResidualStdErr)
	}
	if !almost(m.RSquared, 0.997305, 1e-5) {
		t.Errorf("R² = %g, want ≈0.997305", m.RSquared)
	}
	if !almost(m.FStatistic, 1110.3, 0.5) {
		t.Errorf("F = %g, want ≈1110.3", m.FStatistic)
	}
}

func TestFitErrors(t *testing.T) {
	// Too few observations.
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{1, 2},
		PredictorNames: []string{"x1", "x2"},
		Predictors:     [][]float64{{1, 2}, {3, 4}},
	}
	if _, err := Fit(d); err == nil {
		t.Error("Fit should reject n <= p")
	}
	// Collinear design (x2 = 2*x1) is singular.
	d = &Dataset{
		ResponseName:   "y",
		Response:       []float64{1, 2, 3, 4, 5},
		PredictorNames: []string{"x1", "x2"},
		Predictors:     [][]float64{{1, 2, 3, 4, 5}, {2, 4, 6, 8, 10}},
	}
	if _, err := Fit(d); err == nil {
		t.Error("Fit should detect exact collinearity")
	}
	// Constant response.
	d = &Dataset{
		ResponseName:   "y",
		Response:       []float64{3, 3, 3, 3},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2, 3, 4}},
	}
	if _, err := Fit(d); err == nil {
		t.Error("Fit should reject zero-variance response")
	}
	// Malformed dataset.
	d = &Dataset{
		ResponseName:   "y",
		Response:       []float64{1, 2, 3},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2}},
	}
	if _, err := Fit(d); err == nil {
		t.Error("Fit should reject ragged dataset")
	}
	if _, err := Fit(&Dataset{ResponseName: "y"}); err == nil {
		t.Error("Fit should reject empty dataset")
	}
}

func TestSelect(t *testing.T) {
	d := &Dataset{
		ResponseName:   "M",
		Response:       []float64{1, 2, 3, 4},
		PredictorNames: []string{"AT", "ET", "PT", "EC"},
		Predictors: [][]float64{
			{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}, {13, 14, 15, 16},
		},
	}
	sub, err := d.Select("AT", "ET")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Predictors) != 2 || sub.PredictorNames[1] != "ET" {
		t.Errorf("Select returned %v", sub.PredictorNames)
	}
	if sub.Predictors[1][0] != 5 {
		t.Error("Select copied wrong column")
	}
	if _, err := d.Select("XX"); err == nil {
		t.Error("Select should error on unknown predictor")
	}
	// Mutating the selection must not affect the original.
	sub.Predictors[0][0] = 99
	if d.Predictors[0][0] == 99 {
		t.Error("Select should deep-copy columns")
	}
}

func TestLog10Response(t *testing.T) {
	d := &Dataset{
		ResponseName:   "M",
		Response:       []float64{1, 10, 100},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2, 3}},
	}
	ld, err := d.Log10Response()
	if err != nil {
		t.Fatal(err)
	}
	if ld.ResponseName != "log(M)" {
		t.Errorf("transformed name = %q", ld.ResponseName)
	}
	want := []float64{0, 1, 2}
	for i, y := range ld.Response {
		if !almost(y, want[i], 1e-12) {
			t.Errorf("log response[%d] = %g, want %g", i, y, want[i])
		}
	}
	d.Response[0] = -1
	if _, err := d.Log10Response(); err == nil {
		t.Error("Log10Response should reject non-positive values")
	}
}

func TestDropRow(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{1, 2, 3},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{10, 20, 30}},
	}
	d2, err := d.DropRow(1)
	if err != nil {
		t.Fatal(err)
	}
	if d2.N() != 2 || d2.Response[1] != 3 || d2.Predictors[0][1] != 30 {
		t.Errorf("DropRow produced %v / %v", d2.Response, d2.Predictors[0])
	}
	if d.N() != 3 {
		t.Error("DropRow mutated the original")
	}
	if _, err := d.DropRow(5); err == nil {
		t.Error("DropRow should reject out-of-range index")
	}
}

func TestPredict(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{3, 5, 7, 9},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2, 3, 4}},
	}
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict(10)
	if err != nil || !almost(got, 21, 1e-9) {
		t.Errorf("Predict(10) = %g, want 21", got)
	}
	if _, err := m.Predict(1, 2); err == nil {
		t.Error("Predict should reject wrong arity")
	}
}

func TestCoefLookup(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{3, 5, 7, 9.1},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2, 3, 4}},
	}
	m, _ := Fit(d)
	if _, ok := m.Coef("(Intercept)"); !ok {
		t.Error("intercept coefficient missing")
	}
	if _, ok := m.Coef("x"); !ok {
		t.Error("x coefficient missing")
	}
	if _, ok := m.Coef("zz"); ok {
		t.Error("unknown coefficient should not be found")
	}
}

func TestMaxAbsResidualIndex(t *testing.T) {
	m := &Model{Residuals: []float64{0.1, -0.9, 0.3}}
	if got := m.MaxAbsResidualIndex(); got != 1 {
		t.Errorf("MaxAbsResidualIndex = %d, want 1", got)
	}
}

func TestSummaryFormat(t *testing.T) {
	d := &Dataset{
		ResponseName:   "y",
		Response:       []float64{2.1, 3.9, 6.2, 7.8, 10.1},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2, 3, 4, 5}},
	}
	m, _ := Fit(d)
	s := m.Summary()
	for _, want := range []string{
		"Residuals:", "Coefficients:", "(Intercept)",
		"Residual standard error:", "Multiple R-squared:",
		"F-statistic:", "Signif. codes",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

// Property: fitted + residual == observed for every observation, and the
// residuals of an OLS fit with intercept sum to ~0.
func TestOLSInvariantsProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func() float64 {
			// xorshift; uniform in [0,1).
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			return float64(rng%100000) / 100000.0
		}
		n := 12
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x1[i] = 10 * next()
			x2[i] = 5 * next()
			y[i] = 1 + 2*x1[i] - x2[i] + (next() - 0.5)
		}
		d := &Dataset{
			ResponseName:   "y",
			Response:       y,
			PredictorNames: []string{"x1", "x2"},
			Predictors:     [][]float64{x1, x2},
		}
		m, err := Fit(d)
		if err != nil {
			return true // degenerate random draw; skip
		}
		sum := 0.0
		for i := range y {
			if !almost(m.Fitted[i]+m.Residuals[i], y[i], 1e-8) {
				return false
			}
			sum += m.Residuals[i]
		}
		if math.Abs(sum) > 1e-6 {
			return false
		}
		return m.RSquared >= -1e-9 && m.RSquared <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: R² never decreases when a predictor is added.
func TestRSquaredMonotoneProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed | 1
		next := func() float64 {
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			return float64(rng%100000) / 100000.0
		}
		n := 10
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x1[i] = next() * 3
			x2[i] = next() * 7
			y[i] = 2*x1[i] + next()
		}
		d2 := &Dataset{
			ResponseName:   "y",
			Response:       y,
			PredictorNames: []string{"x1", "x2"},
			Predictors:     [][]float64{x1, x2},
		}
		d1, _ := d2.Select("x1")
		m1, err1 := Fit(d1)
		m2, err2 := Fit(d2)
		if err1 != nil || err2 != nil {
			return true
		}
		return m2.RSquared >= m1.RSquared-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
