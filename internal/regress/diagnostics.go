package regress

import (
	"errors"
	"fmt"
	"math"

	"teem/internal/stats"
)

// This file adds the collinearity diagnostics behind the paper's Table I
// discussion ("when combined in a model, they masked each other... This
// often results in collinear problem whenever two or more predictors are
// strongly correlated"): variance inflation factors, a pairwise
// correlation matrix, and coefficient confidence intervals.

// VIF returns the variance inflation factor of each predictor in the
// dataset: 1/(1−R²ⱼ) where R²ⱼ comes from regressing predictor j on the
// others. Values above ~5–10 flag the collinearity that motivates the
// paper's model reduction (dropping PT and EC).
func VIF(d *Dataset) (map[string]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Predictors) < 2 {
		return nil, errors.New("regress: VIF needs at least two predictors")
	}
	out := make(map[string]float64, len(d.Predictors))
	for j, name := range d.PredictorNames {
		sub := &Dataset{
			ResponseName: name,
			Response:     append([]float64(nil), d.Predictors[j]...),
		}
		for k, other := range d.PredictorNames {
			if k == j {
				continue
			}
			sub.PredictorNames = append(sub.PredictorNames, other)
			sub.Predictors = append(sub.Predictors, append([]float64(nil), d.Predictors[k]...))
		}
		m, err := Fit(sub)
		if err != nil {
			// A perfectly collinear predictor has infinite VIF.
			if errors.Is(err, ErrSingular) {
				out[name] = math.Inf(1)
				continue
			}
			return nil, fmt.Errorf("regress: VIF(%s): %w", name, err)
		}
		r2 := m.RSquared
		if r2 >= 1 {
			out[name] = math.Inf(1)
		} else {
			out[name] = 1 / (1 - r2)
		}
	}
	return out, nil
}

// CorrelationMatrix returns the Pearson correlation between every pair of
// columns (response first, then predictors), in the order of Names.
type CorrelationMatrix struct {
	Names []string
	R     [][]float64
}

// Correlations computes the correlation matrix of the dataset.
func Correlations(d *Dataset) (*CorrelationMatrix, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	names := append([]string{d.ResponseName}, d.PredictorNames...)
	cols := append([][]float64{d.Response}, d.Predictors...)
	n := len(cols)
	r := make([][]float64, n)
	for i := range r {
		r[i] = make([]float64, n)
		r[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, err := stats.Pearson(cols[i], cols[j])
			if err != nil {
				return nil, fmt.Errorf("regress: correlation %s~%s: %w", names[i], names[j], err)
			}
			r[i][j], r[j][i] = v, v
		}
	}
	return &CorrelationMatrix{Names: names, R: r}, nil
}

// Of returns the correlation between two named columns.
func (c *CorrelationMatrix) Of(a, b string) (float64, error) {
	ia, ib := -1, -1
	for i, n := range c.Names {
		if n == a {
			ia = i
		}
		if n == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("regress: unknown column in correlation lookup (%q, %q)", a, b)
	}
	return c.R[ia][ib], nil
}

// ConfInt returns the (1−alpha) confidence interval of a fitted
// coefficient, using the Student-t quantile on the residual degrees of
// freedom — R's confint().
func (m *Model) ConfInt(name string, alpha float64) (lo, hi float64, err error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, errors.New("regress: alpha outside (0,1)")
	}
	c, ok := m.Coef(name)
	if !ok {
		return 0, 0, fmt.Errorf("regress: unknown coefficient %q", name)
	}
	t := stats.StudentTQuantile(1-alpha/2, float64(m.DFResidual))
	return c.Estimate - t*c.StdError, c.Estimate + t*c.StdError, nil
}
