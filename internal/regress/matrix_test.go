package regress

import (
	"errors"
	"math"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("Set/At round trip failed")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone should not alias")
	}
	col := m.Col(2)
	if len(col) != 2 || col[1] != 5 {
		t.Errorf("Col(2) = %v", col)
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong length should panic")
		}
	}()
	m.MulVec([]float64{1})
}

func TestQRSolveSquare(t *testing.T) {
	// Solve a well-conditioned 3x3 system exactly.
	a := NewMatrix(3, 3)
	vals := [][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	xTrue := []float64{1, -2, 3}
	b := a.MulVec(xTrue)
	f, err := factorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.solve(b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestQRRejectsWideMatrix(t *testing.T) {
	a := NewMatrix(2, 3)
	a.Set(0, 0, 1)
	if _, err := factorQR(a); err == nil {
		t.Error("factorQR should reject rows < cols")
	}
}

func TestQRRejectsZeroMatrix(t *testing.T) {
	a := NewMatrix(4, 2)
	if _, err := factorQR(a); err == nil {
		t.Error("factorQR should reject the zero matrix")
	}
}

func TestQRRejectsRankDeficient(t *testing.T) {
	// Second column is 3x the first.
	a := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 3*float64(i+1))
	}
	if _, err := factorQR(a); !errors.Is(err, ErrSingular) {
		t.Errorf("factorQR rank-deficient: got %v, want ErrSingular", err)
	}
}

func TestXTXInverseDiag(t *testing.T) {
	// For an orthonormal design, (XᵀX)⁻¹ = I, so the diagonal is all 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	f, err := factorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	d := f.xtxInverseDiag()
	for i, v := range d {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("diag[%d] = %g, want 1", i, v)
		}
	}
}

func TestRInverse(t *testing.T) {
	// Verify R·R⁻¹ = I for a random-ish tall matrix by checking that
	// solving with R⁻¹ matches direct back-substitution results.
	a := NewMatrix(5, 3)
	vals := []float64{
		2, 1, 0,
		1, 3, 1,
		0, 1, 4,
		1, 0, 1,
		2, 2, 2,
	}
	copy(a.Data, vals)
	f, err := factorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	rinv := f.rInverse()
	// Reconstruct R from the packed factorisation.
	n := 3
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		r.Set(i, i, f.rdiag[i])
		for j := i + 1; j < n; j++ {
			r.Set(i, j, f.w.At(i, j))
		}
	}
	// R · R⁻¹ should be the identity.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += r.At(i, k) * rinv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-10 {
				t.Errorf("(R·R⁻¹)[%d][%d] = %g, want %g", i, j, s, want)
			}
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(-1, 2) should panic")
		}
	}()
	NewMatrix(-1, 2)
}
