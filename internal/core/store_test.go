package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func TestStoreRoundTrip(t *testing.T) {
	mg := newManager(t)
	app := workload.Covariance()
	am, err := mg.Profile(app)
	if err != nil {
		t.Fatal(err)
	}

	st, err := mg.Export()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Models) != 1 || st.Models[0].App != "COVARIANCE" {
		t.Fatalf("export = %+v", st)
	}
	if st.Platform != "Exynos5422" {
		t.Errorf("platform = %q", st.Platform)
	}

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "etgpu_sec") {
		t.Error("JSON missing expected fields")
	}

	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh manager with only the imported store must make the same
	// online decisions as the profiling manager.
	mg2, err := NewManager(soc.Exynos5422(), thermal.Exynos5422Network(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := mg2.Import(loaded); err != nil {
		t.Fatal(err)
	}
	d1, err := mg.Decide("COVARIANCE", am.ETGPUSec/2, 85)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := mg2.Decide("COVARIANCE", am.ETGPUSec/2, 85)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Map != d2.Map || d1.Part != d2.Part {
		t.Errorf("imported decision %v/%v != original %v/%v", d2.Map, d2.Part, d1.Map, d1.Part)
	}
	if math.Abs(d1.PredictedM-d2.PredictedM) > 1e-9 {
		t.Errorf("predicted M differs: %g vs %g", d1.PredictedM, d2.PredictedM)
	}
}

func TestLoadStoreRejectsBadInput(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"models":[{"app":"","etgpu_sec":10}]}`,
		`{"models":[{"app":"X","etgpu_sec":0}]}`,
		`{"models":[{"app":"X","etgpu_sec":10},{"app":"X","etgpu_sec":12}]}`,
	}
	for i, c := range cases {
		if _, err := LoadStore(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: accepted invalid store", i)
		}
	}
}

func TestImportRejectsWrongPlatform(t *testing.T) {
	mg := newManager(t)
	st := &Store{Platform: "OtherSoC", Models: []StoredModel{
		{App: "X", Intercept: 1, ETGPUSec: 10},
	}}
	if err := mg.Import(st); err == nil {
		t.Error("Import should reject mismatched platform")
	}
}

func TestImportRejectsInvalidModels(t *testing.T) {
	mg := newManager(t)
	st := &Store{Models: []StoredModel{{App: "X", Intercept: math.NaN(), ETGPUSec: 10}}}
	if err := mg.Import(st); err == nil {
		t.Error("Import should reject NaN coefficients")
	}
}

func TestExportWithoutProfilesIsEmpty(t *testing.T) {
	mg := newManager(t)
	st, err := mg.Export()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Models) != 0 {
		t.Errorf("fresh manager exported %d models", len(st.Models))
	}
}

func TestImportedModelRunsOnline(t *testing.T) {
	mg := newManager(t)
	app := workload.Covariance()
	if _, err := mg.Profile(app); err != nil {
		t.Fatal(err)
	}
	st, _ := mg.Export()

	mg2, err := NewManager(soc.Exynos5422(), thermal.Exynos5422Network(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := mg2.Import(st); err != nil {
		t.Fatal(err)
	}
	res, _, err := mg2.Run(app, st.Models[0].ETGPUSec/2, 85)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.ThrottleEvents != 0 {
		t.Errorf("imported-model run: completed=%v trips=%d", res.Completed, res.ThrottleEvents)
	}
}
