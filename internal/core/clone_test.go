package core

import (
	"testing"

	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// Clone must snapshot the model store: models profiled before the clone
// are visible in it, models profiled after — on either side — are not
// shared.
func TestManagerCloneSnapshotsModels(t *testing.T) {
	mgr, err := NewManager(soc.Exynos5422(), thermal.Exynos5422Network(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cov := workload.Covariance()
	am, err := mgr.Profile(cov)
	if err != nil {
		t.Fatal(err)
	}

	clone := mgr.Clone()
	got, ok := clone.Model(cov.Name)
	if !ok || got != am {
		t.Fatal("clone should carry the pre-clone model")
	}
	if clone.Params() != mgr.Params() {
		t.Error("clone should share the parameters")
	}
	// The clone can decide and run from the snapshot.
	if _, err := clone.Decide(cov.Name, am.ETGPUSec/2, 85); err != nil {
		t.Errorf("clone Decide: %v", err)
	}

	// Divergence after the snapshot: profiling into the original must
	// not appear in the clone, and vice versa.
	syrk := workload.Syrk()
	if _, err := mgr.Profile(syrk); err != nil {
		t.Fatal(err)
	}
	if _, ok := clone.Model(syrk.Name); ok {
		t.Error("model profiled into the original leaked into the clone")
	}
	mvt := workload.Mvt()
	if _, err := clone.Profile(mvt); err != nil {
		t.Fatal(err)
	}
	if _, ok := mgr.Model(mvt.Name); ok {
		t.Error("model profiled into the clone leaked into the original")
	}
}
