package core

import (
	"testing"

	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// BenchmarkControllerDecision measures one online control step (sensor
// read + threshold logic + frequency command) — the paper's runtime
// overhead per monitoring period.
func BenchmarkControllerDecision(b *testing.B) {
	// A no-op machine is enough to measure the decision path.
	m := &stubMachine{freq: 2000, temp: 86}
	c := NewController(DefaultParams())
	if err := c.Start(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Act(m); err != nil {
			b.Fatal(err)
		}
	}
}

type stubMachine struct {
	freq int
	temp float64
}

func (s *stubMachine) TimeS() float64             { return 0 }
func (s *stubMachine) Platform() *soc.Platform    { return exynosOnce() }
func (s *stubMachine) SensorC(string) float64     { return s.temp }
func (s *stubMachine) ClusterFreqMHz(string) int  { return s.freq }
func (s *stubMachine) ClusterUtil(string) float64 { return 1 }
func (s *stubMachine) Throttled() bool            { return false }
func (s *stubMachine) SetClusterFreqMHz(_ string, f int) error {
	s.freq = f
	return nil
}

var exynosCache *soc.Platform

func exynosOnce() *soc.Platform {
	if exynosCache == nil {
		exynosCache = soc.Exynos5422()
	}
	return exynosCache
}

// BenchmarkPredictM measures one stored-model evaluation (the §V.D
// runtime lookup).
func BenchmarkPredictM(b *testing.B) {
	mg, err := NewManager(soc.Exynos5422(), thermal.Exynos5422Network(), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	am, err := mg.Profile(workload.Covariance())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := am.PredictM(85, 35); err != nil {
			b.Fatal(err)
		}
	}
}
