package core

import (
	"math"
	"testing"

	"teem/internal/mapping"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	mg, err := NewManager(soc.Exynos5422(), thermal.Exynos5422Network(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return mg
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Params{
		{ThresholdC: 0, DeltaMHz: 200, FloorMHz: 1400, PeriodS: 1},
		{ThresholdC: 85, DeltaMHz: 0, FloorMHz: 1400, PeriodS: 1},
		{ThresholdC: 85, DeltaMHz: 200, FloorMHz: 0, PeriodS: 1},
		{ThresholdC: 85, DeltaMHz: 200, FloorMHz: 1400, PeriodS: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.ThresholdC != 85 {
		t.Errorf("threshold = %g, want the paper's 85 °C", p.ThresholdC)
	}
	if p.DeltaMHz != 200 {
		t.Errorf("delta = %d, want the paper's 200 MHz", p.DeltaMHz)
	}
	if p.FloorMHz != 1400 {
		t.Errorf("floor = %d, want the paper's 1400 MHz", p.FloorMHz)
	}
}

func TestNewManagerValidation(t *testing.T) {
	plat := soc.Exynos5422()
	net := thermal.Exynos5422Network()
	if _, err := NewManager(plat, net, Params{}); err == nil {
		t.Error("zero params should be rejected")
	}
	broken := soc.Exynos5422()
	broken.Clusters = broken.Clusters[:1]
	if _, err := NewManager(broken, net, DefaultParams()); err == nil {
		t.Error("platform without GPU should be rejected")
	}
}

// The controller must respect threshold, delta steps and the floor.
func TestControllerRegulation(t *testing.T) {
	cfg := sim.Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Syrk(), // hottest app
		Map:      mapping.Mapping{Big: 4, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
		Governor: NewController(DefaultParams()),
	}
	res, err := sim.RunWarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	// Peak stays in a narrow band above the threshold (the paper's
	// Fig. 1(b) overshoots to 90 °C at worst) and far below the trip.
	if res.PeakTempC > 92 {
		t.Errorf("TEEM peak %g too high", res.PeakTempC)
	}
	if res.ThrottleEvents != 0 {
		t.Errorf("TEEM should avoid hardware trips, got %d", res.ThrottleEvents)
	}
	// Frequency must never fall below the floor.
	ci := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		if f := s.FreqsMHz[ci]; f < 1400 {
			t.Errorf("frequency %d below the 1400 MHz floor", f)
			break
		}
	}
}

// Steps must be multiples of delta relative to the OPP ladder: from 2000
// the sequence is 1800, 1600, 1400.
func TestControllerStepSequence(t *testing.T) {
	cfg := sim.Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Syrk(),
		Map:      mapping.Mapping{Big: 4, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
		Governor: NewController(DefaultParams()),
	}
	res, err := sim.RunWarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[int]bool{2000: true, 1800: true, 1600: true, 1400: true}
	ci := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		if !allowed[s.FreqsMHz[ci]] {
			t.Errorf("unexpected frequency %d (must step by 200 from 2000 down to 1400)", s.FreqsMHz[ci])
			break
		}
	}
}

func TestProfileBuildsPaperShapedModel(t *testing.T) {
	mg := newManager(t)
	am, err := mg.Profile(workload.Covariance())
	if err != nil {
		t.Fatal(err)
	}
	// 17 observations (16 mappings + replicate), as the paper's Table I
	// degrees of freedom imply.
	if len(am.Observations) != 17 {
		t.Errorf("got %d observations, want 17", len(am.Observations))
	}
	// Full model: 4 predictors on 12 residual DF.
	if am.FullModel.DFModel != 4 || am.FullModel.DFResidual != 12 {
		t.Errorf("Table I df = (%d,%d), want (4,12)", am.FullModel.DFModel, am.FullModel.DFResidual)
	}
	// Transformed model: 2 predictors on 13 residual DF (16 obs).
	if am.Model.DFModel != 2 || am.Model.DFResidual != 13 {
		t.Errorf("Table II df = (%d,%d), want (2,13)", am.Model.DFModel, am.Model.DFResidual)
	}
	// Both runtime coefficients negative, as in the paper's Table II.
	at, _ := am.Model.Coef("AT")
	et, _ := am.Model.Coef("ET")
	if at.Estimate >= 0 || et.Estimate >= 0 {
		t.Errorf("AT (%g) and ET (%g) slopes should be negative", at.Estimate, et.Estimate)
	}
	// ET strongly significant; AT at least at the 5% level.
	if et.PValue > 0.001 {
		t.Errorf("ET p-value %g should be < 0.001", et.PValue)
	}
	if at.PValue > 0.05 {
		t.Errorf("AT p-value %g should be < 0.05", at.PValue)
	}
	// Good fit, as the paper reports (R² ≈ 0.92).
	if am.Model.RSquared < 0.8 {
		t.Errorf("R² = %g, want ≥ 0.8", am.Model.RSquared)
	}
	// ETGPU stored and plausible.
	if am.ETGPUSec < 60 || am.ETGPUSec > 80 {
		t.Errorf("ETGPU = %g, want ≈ 70 (COVARIANCE calibration)", am.ETGPUSec)
	}
	// Memory store: the paper's 2 items / 32 bytes.
	if am.StorageBytes() != 32 {
		t.Errorf("StorageBytes = %d, want 32", am.StorageBytes())
	}
	// The model must now be queryable through the manager.
	if _, ok := mg.Model("COVARIANCE"); !ok {
		t.Error("model not stored in manager")
	}
}

func TestFitModelRejectsTinyDatasets(t *testing.T) {
	if _, err := FitModel("x", make([]Observation, 3)); err == nil {
		t.Error("FitModel should reject < 6 observations")
	}
}

func TestDecideEq9Partition(t *testing.T) {
	mg := newManager(t)
	am, err := mg.Profile(workload.Covariance())
	if err != nil {
		t.Fatal(err)
	}
	etGPU := am.ETGPUSec

	// TREQ = ETGPU/2 → WGCPU = 0.5 → grain 4/8 (the paper's
	// "partition 1024").
	dec, err := mg.Decide("COVARIANCE", etGPU/2, 85)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Part.Num != 4 {
		t.Errorf("partition = %s, want 4/8", dec.Part)
	}
	if math.Abs(dec.WGCPU-0.5) > 1e-9 {
		t.Errorf("WGCPU = %g, want 0.5", dec.WGCPU)
	}

	// TREQ ≥ ETGPU → all GPU (the paper's Eq. 9 guard).
	dec, err = mg.Decide("COVARIANCE", etGPU*1.2, 85)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Part.Num != 0 || !dec.Map.UseGPU {
		t.Errorf("relaxed TREQ should map all work to the GPU, got %s %s", dec.Map, dec.Part)
	}

	// Tighter TREQ → larger CPU share.
	tight, _ := mg.Decide("COVARIANCE", etGPU/4, 85)
	loose, _ := mg.Decide("COVARIANCE", etGPU/2, 85)
	if tight.Part.Num <= loose.Part.Num {
		t.Errorf("tighter TREQ should shift work to the CPU: %s vs %s", tight.Part, loose.Part)
	}
}

func TestDecideErrors(t *testing.T) {
	mg := newManager(t)
	if _, err := mg.Decide("COVARIANCE", 10, 85); err == nil {
		t.Error("Decide before Profile should error")
	}
	if _, err := mg.Profile(workload.Covariance()); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Decide("COVARIANCE", -1, 85); err == nil {
		t.Error("Decide should reject non-positive TREQ")
	}
	if _, err := mg.DecidePartition("nope", 10); err == nil {
		t.Error("DecidePartition for unknown app should error")
	}
	if _, err := mg.DecidePartition("COVARIANCE", 0); err == nil {
		t.Error("DecidePartition should reject zero TREQ")
	}
}

func TestDecodeMapping(t *testing.T) {
	cases := []struct {
		m       float64
		wantBig int
		wantLit int
	}{
		{0.4, 1, 0}, // clamps up to one core
		{2, 1, 1},
		{5, 3, 2}, // the paper's 2L+3B
		{8, 4, 4},
		{20, 4, 4}, // clamps to platform
	}
	for _, c := range cases {
		got := decodeMapping(c.m, 4, 4)
		if got.Big != c.wantBig || got.Little != c.wantLit {
			t.Errorf("decodeMapping(%g) = %s, want %dL+%dB", c.m, got, c.wantLit, c.wantBig)
		}
	}
}

func TestPredictMUnfitted(t *testing.T) {
	am := &AppModel{}
	if _, err := am.PredictM(85, 30); err == nil {
		t.Error("PredictM on empty model should error")
	}
}

func TestManagerRunEndToEnd(t *testing.T) {
	mg := newManager(t)
	app := workload.Covariance()
	am, err := mg.Profile(app)
	if err != nil {
		t.Fatal(err)
	}
	res, dec, err := mg.Run(app, am.ETGPUSec/2, 85)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("TEEM run did not complete")
	}
	// The whole point: average temperature regulated near the
	// threshold.
	if res.AvgTempC > 88.5 {
		t.Errorf("TEEM average temperature %g too far above the 85 °C threshold", res.AvgTempC)
	}
	if res.ThrottleEvents != 0 {
		t.Error("TEEM should not rely on hardware throttling")
	}
	if dec.Part.Num == 0 {
		t.Error("half-ETGPU TREQ should use the CPU")
	}
}

// RunAt must honour an explicitly pinned design point (the Fig. 1 setup).
func TestRunAtPinned(t *testing.T) {
	mg := newManager(t)
	res, err := mg.RunAt(workload.Covariance(),
		mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		mapping.Partition{Num: 4, Den: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("pinned run did not complete")
	}
	if res.AvgTempC > 88.5 || res.PeakTempC > 92 {
		t.Errorf("pinned TEEM run temps avg=%g peak=%g out of regulation band", res.AvgTempC, res.PeakTempC)
	}
}

// Nothing is hard-wired to the Exynos 5422: the full offline+online
// pipeline runs on the 5410 preset with its own thermal topology and
// 90 °C/800 MHz firmware protection.
func TestPipelineOnExynos5410(t *testing.T) {
	plat := soc.Exynos5410()
	net := &thermal.Network{
		Nodes: []thermal.Node{
			{Name: "A15", HeatCapJ: 1.0},
			{Name: "A7", HeatCapJ: 0.5},
			{Name: "SGX544", HeatCapJ: 1.0},
			{Name: "pkg", HeatCapJ: 1.5},
		},
		Links: []thermal.Link{
			{A: 0, B: 3, ResCW: 4.5},
			{A: 1, B: 3, ResCW: 5.0},
			{A: 2, B: 3, ResCW: 3.5},
			{A: 3, B: thermal.Ambient, ResCW: 8.0},
		},
	}
	params := DefaultParams()
	params.ThresholdC = 80 // below the 5410's 90 °C trip
	params.FloorMHz = 1000
	mg, err := NewManager(plat, net, params)
	if err != nil {
		t.Fatal(err)
	}
	app := workload.Covariance()
	am, err := mg.Profile(app)
	if err != nil {
		t.Fatal(err)
	}
	if am.ETGPUSec <= 0 {
		t.Fatal("no ETGPU measured on 5410")
	}
	res, dec, err := mg.Run(app, am.ETGPUSec/2, params.ThresholdC)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("5410 run did not complete")
	}
	if res.PeakTempC >= plat.TripC {
		t.Errorf("TEEM on 5410 peaked at %.1f, trip is %.0f", res.PeakTempC, plat.TripC)
	}
	if dec.Map.CPUCores() == 0 && dec.Part.Num > 0 {
		t.Error("inconsistent 5410 decision")
	}
}
