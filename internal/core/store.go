package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// The runtime store is the §V.D artefact: per application, the three
// model coefficients (Eq. 6) and the measured ETGPU. This file gives it a
// durable form so offline profiling can run once (e.g. on a build server)
// and ship to devices.

// StoredModel is the serialisable runtime model of one application.
type StoredModel struct {
	// App is the Polybench application name.
	App string `json:"app"`
	// Intercept, ATSlope and ETSlope are the Eq. (6) coefficients of
	// log10(M) = Intercept + ATSlope·AT + ETSlope·ET.
	Intercept float64 `json:"intercept"`
	ATSlope   float64 `json:"at_slope"`
	ETSlope   float64 `json:"et_slope"`
	// ETGPUSec is the stored GPU-only execution time (Eq. 9).
	ETGPUSec float64 `json:"etgpu_sec"`
}

// Validate reports an error for unusable stored models.
func (s *StoredModel) Validate() error {
	if s.App == "" {
		return errors.New("core: stored model has empty app name")
	}
	if s.ETGPUSec <= 0 {
		return fmt.Errorf("core: stored model %s has non-positive ETGPU", s.App)
	}
	for _, v := range []float64{s.Intercept, s.ATSlope, s.ETSlope} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: stored model %s has non-finite coefficient", s.App)
		}
	}
	return nil
}

// Store is the persistent set of runtime models.
type Store struct {
	// Platform names the platform the models were profiled on.
	Platform string `json:"platform"`
	// Models holds one entry per profiled application.
	Models []StoredModel `json:"models"`
}

// Export extracts the runtime store from the manager's profiled models,
// sorted by application name so the serialised form is deterministic.
func (mg *Manager) Export() (*Store, error) {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	st := &Store{Platform: mg.plat.Name}
	for name, am := range mg.models {
		if am.Model == nil || len(am.Model.Coefficients) != 3 {
			return nil, fmt.Errorf("core: app %s has no runtime model", name)
		}
		st.Models = append(st.Models, StoredModel{
			App:       name,
			Intercept: am.Model.Coefficients[0].Estimate,
			ATSlope:   am.Model.Coefficients[1].Estimate,
			ETSlope:   am.Model.Coefficients[2].Estimate,
			ETGPUSec:  am.ETGPUSec,
		})
	}
	sort.Slice(st.Models, func(i, j int) bool { return st.Models[i].App < st.Models[j].App })
	return st, nil
}

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LoadStore reads a store from JSON and validates it.
func LoadStore(r io.Reader) (*Store, error) {
	var s Store
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding store: %w", err)
	}
	seen := map[string]bool{}
	for i := range s.Models {
		if err := s.Models[i].Validate(); err != nil {
			return nil, err
		}
		if seen[s.Models[i].App] {
			return nil, fmt.Errorf("core: duplicate stored model %s", s.Models[i].App)
		}
		seen[s.Models[i].App] = true
	}
	return &s, nil
}

// Import installs stored runtime models into the manager. Imported models
// can Decide and Run but carry no profiling artefacts (FullModel, Dataset
// are nil — those are offline-only).
func (mg *Manager) Import(s *Store) error {
	if s.Platform != "" && s.Platform != mg.plat.Name {
		return fmt.Errorf("core: store was profiled on %s, manager drives %s", s.Platform, mg.plat.Name)
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	for _, sm := range s.Models {
		if err := sm.Validate(); err != nil {
			return err
		}
		mg.models[sm.App] = &AppModel{
			AppName:    sm.App,
			ETGPUSec:   sm.ETGPUSec,
			DroppedRow: -1,
			runtime:    &runtimeCoeffs{intercept: sm.Intercept, at: sm.ATSlope, et: sm.ETSlope},
		}
	}
	return nil
}
