// Package core implements TEEM, the paper's contribution: an online
// thermal- and energy-efficiency manager for CPU-GPU MPSoCs.
//
// The offline phase (Manager.Profile) evaluates design points across the
// CPU mappings 1L+1B…4L+4B, measuring average temperature (AT), execution
// time (ET), peak temperature (PT) and energy consumption (EC) per
// observation, fits the full linear model M ~ AT+ET+PT+EC (paper Table I),
// drops the masked collinear predictors and the largest outlier, and
// refits the log-transformed model log10(M) = β0 + β1·AT + β2·ET (Eq. 6,
// Table II). Only the three coefficients and the stored ETGPU survive to
// runtime — the §V.D memory claim.
//
// The online phase (Manager.Decide + Controller) selects the mapping from
// the model given the user's (TREQ, AT) requirement, derives the work-item
// partition from Eq. (9) WGCPU = 1 − TREQ/ETGPU, launches at maximum
// frequency, and then regulates: whenever a monitored sensor reaches the
// threshold (default 85 °C) the A15 cluster steps down by δ (200 MHz) but
// never below the floor (1400 MHz); when the temperature falls below the
// threshold the design point with maximum frequency is re-selected
// (Fig. 2).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"teem/internal/mapping"
	"teem/internal/regress"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

// Params are the online controller knobs with the paper's defaults.
type Params struct {
	// ThresholdC is the software thermal threshold (paper: 85 °C).
	ThresholdC float64
	// DeltaMHz is the frequency step-down per control decision
	// (paper: 200 MHz).
	DeltaMHz int
	// FloorMHz is the lowest frequency the controller will command on
	// the big cluster (paper: 1400 MHz).
	FloorMHz int
	// PeriodS is the monitoring period.
	PeriodS float64
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{ThresholdC: 85, DeltaMHz: 200, FloorMHz: 1400, PeriodS: 2.0}
}

// Validate reports an error for out-of-range parameters.
func (p Params) Validate() error {
	if p.ThresholdC <= 0 {
		return errors.New("core: ThresholdC must be positive")
	}
	if p.DeltaMHz <= 0 {
		return errors.New("core: DeltaMHz must be positive")
	}
	if p.FloorMHz <= 0 {
		return errors.New("core: FloorMHz must be positive")
	}
	if p.PeriodS <= 0 {
		return errors.New("core: PeriodS must be positive")
	}
	return nil
}

// Controller is TEEM's online thermal regulator (a sim.Governor). It
// monitors the big-CPU and GPU sensors — the two the paper reads — and
// steps only the A15 frequency, as the paper observed the LITTLE and GPU
// clusters are not the throttling bottleneck.
type Controller struct {
	// Params configure the regulation.
	Params Params

	bigName  string
	gpuName  string
	litName  string
	maxBig   int
	maxLit   int
	maxGPU   int
	floorMHz int
}

// NewController returns a controller with the given parameters.
func NewController(p Params) *Controller { return &Controller{Params: p} }

// Name implements sim.Governor.
func (c *Controller) Name() string { return "teem" }

// PeriodS implements sim.Governor.
func (c *Controller) PeriodS() float64 { return c.Params.PeriodS }

// Start implements sim.Governor: discover clusters and launch at maximum
// frequency (the Fig. 2 "execute" box).
func (c *Controller) Start(m sim.Machine) error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	p := m.Platform()
	big, lit, gpu := p.Big(), p.Little(), p.GPU()
	if big == nil || lit == nil || gpu == nil {
		return errors.New("core: controller needs big, LITTLE and GPU clusters")
	}
	c.bigName, c.litName, c.gpuName = big.Name, lit.Name, gpu.Name
	c.maxBig, c.maxLit, c.maxGPU = big.MaxFreqMHz(), lit.MaxFreqMHz(), gpu.MaxFreqMHz()
	c.floorMHz = big.CeilOPP(c.Params.FloorMHz).FreqMHz
	if err := m.SetClusterFreqMHz(c.bigName, c.maxBig); err != nil {
		return err
	}
	if err := m.SetClusterFreqMHz(c.litName, c.maxLit); err != nil {
		return err
	}
	return m.SetClusterFreqMHz(c.gpuName, c.maxGPU)
}

// Act implements sim.Governor: the Fig. 2 online loop. Both the big and
// GPU sensors are monitored (the paper reads both), but the step-down
// decision keys on the big sensor: the A15 cluster is the only actuator
// the loop drives, and it is the thermal bottleneck on this platform —
// stepping it down because the GPU is warm would sacrifice performance
// without cooling the GPU.
func (c *Controller) Act(m sim.Machine) error {
	t := m.SensorC(c.bigName)
	cur := m.ClusterFreqMHz(c.bigName)
	if t >= c.Params.ThresholdC {
		want := cur - c.Params.DeltaMHz
		if want < c.floorMHz {
			want = c.floorMHz
		}
		if want < cur {
			return m.SetClusterFreqMHz(c.bigName, want)
		}
		return nil
	}
	// Below threshold: select the design point with maximum frequency
	// so performance is not infringed.
	if cur != c.maxBig {
		return m.SetClusterFreqMHz(c.bigName, c.maxBig)
	}
	return nil
}

// Observation is one offline profiling measurement.
type Observation struct {
	// Map is the profiled CPU mapping.
	Map mapping.Mapping
	// M is the response variable: the number of used big.LITTLE cores.
	M float64
	// ATC, PTC are average and peak temperature (°C); ETS execution
	// time (s); ECJ energy (J).
	ATC, PTC, ETS, ECJ float64
}

// AppModel is everything TEEM knows about one application after the
// offline phase.
type AppModel struct {
	// AppName is the Polybench name.
	AppName string
	// Model is the runtime model: log10(M) ~ AT + ET (Table II).
	Model *regress.Model
	// ETGPUSec is the stored GPU-only execution time at maximum GPU
	// frequency (Eq. 8/9).
	ETGPUSec float64

	// FullModel is the Table I fit (all four predictors), kept for
	// reporting only — it is not part of the runtime store.
	FullModel *regress.Model
	// Dataset is the profiling dataset behind Fig. 3; DroppedRow is the
	// outlier removed before the Table II refit (-1 if none).
	Dataset    *regress.Dataset
	DroppedRow int
	// Observations are the raw profiling measurements.
	Observations []Observation

	// runtime carries the Eq. (6) coefficients in the compact form the
	// store persists; always set for usable models.
	runtime *runtimeCoeffs
}

// runtimeCoeffs is the 24-byte coefficient record of the runtime store.
type runtimeCoeffs struct {
	intercept, at, et float64
}

// StorageBytes returns the runtime memory cost of the model store: three
// float64 coefficients plus the stored ETGPU (the paper's "2 items").
func (am *AppModel) StorageBytes() int { return mapping.TEEMStorageBytes() }

// PredictM evaluates the stored model: the predicted number of used
// big.LITTLE cores for a required average temperature and execution time.
func (am *AppModel) PredictM(atC, etS float64) (float64, error) {
	if am.runtime == nil {
		return 0, errors.New("core: app model not fitted")
	}
	logM := am.runtime.intercept + am.runtime.at*atC + am.runtime.et*etS
	return math.Pow(10, logM), nil
}

// Manager owns the offline profiles and makes online decisions. A
// Manager is safe for concurrent use: the model store is mutex-guarded,
// and every simulation a method launches runs on engine state private to
// that call (the shared Platform and Network are read-only during
// simulation).
type Manager struct {
	plat   *soc.Platform
	net    *thermal.Network
	params Params

	mu     sync.RWMutex
	models map[string]*AppModel //teem:guards mu
}

// NewManager builds a TEEM manager for a platform.
func NewManager(plat *soc.Platform, net *thermal.Network, params Params) (*Manager, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if plat.Big() == nil || plat.Little() == nil || plat.GPU() == nil {
		return nil, errors.New("core: platform must have big, LITTLE and GPU clusters")
	}
	return &Manager{
		plat:   plat,
		net:    net,
		params: params,
		models: make(map[string]*AppModel),
	}, nil
}

// Params returns the configured controller parameters.
func (mg *Manager) Params() Params { return mg.params }

// Model returns the stored model for an app, if profiled.
func (mg *Manager) Model(appName string) (*AppModel, bool) {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	am, ok := mg.models[appName]
	return am, ok
}

// Clone returns a manager sharing the (read-only) platform, network and
// parameters with a snapshot of the current model store. The manager is
// already safe for concurrent use; Clone is for callers that want full
// isolation instead — a worker that must not observe apps profiled after
// the snapshot, or one that profiles throwaway variants without
// polluting the shared store.
func (mg *Manager) Clone() *Manager {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	models := make(map[string]*AppModel, len(mg.models))
	for k, v := range mg.models {
		models[k] = v
	}
	return &Manager{plat: mg.plat, net: mg.net, params: mg.params, models: models}
}

// profileRun executes one profiling measurement at maximum frequencies
// under the firmware protection, using the paper's steady-regime protocol.
func (mg *Manager) profileRun(app *workload.App, m mapping.Mapping, part mapping.Partition) (*sim.Result, error) {
	cfg := sim.Config{
		Platform: mg.plat,
		Net:      mg.net,
		App:      app,
		Map:      m,
		Part:     part,
	}
	return sim.RunWarm(cfg)
}

// Profile runs the offline phase for an application: 17 observations (the
// 16 mappings 1L+1B…4L+4B plus a replicate of the median mapping), the
// GPU-only ETGPU measurement, the Table I full fit, outlier drop, and the
// Table II log fit. The resulting AppModel is stored in the manager.
func (mg *Manager) Profile(app *workload.App) (*AppModel, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	big, lit := mg.plat.Big(), mg.plat.Little()
	part := mapping.Partition{Num: 4, Den: 8} // even split, the Fig. 1 setting

	var obs []Observation
	measure := func(m mapping.Mapping) error {
		res, err := mg.profileRun(app, m, part)
		if err != nil {
			return err
		}
		obs = append(obs, Observation{
			Map: m,
			M:   float64(m.CPUCores()),
			ATC: res.AvgTempC,
			PTC: res.PeakTempC,
			ETS: res.ExecTimeS,
			ECJ: res.EnergyJ,
		})
		return nil
	}
	for nl := 1; nl <= lit.NumCores; nl++ {
		for nb := 1; nb <= big.NumCores; nb++ {
			if err := measure(mapping.Mapping{Big: nb, Little: nl, UseGPU: true}); err != nil {
				return nil, err
			}
		}
	}
	// The 17th observation: replicate of the median mapping (2L+3B), as
	// the paper's dataset carries 17 observations into Table I.
	if err := measure(mapping.Mapping{Big: 3, Little: 2, UseGPU: true}); err != nil {
		return nil, err
	}

	// ETGPU at maximum GPU frequency (stored item #2).
	gpuRes, err := mg.profileRun(app, mapping.Mapping{UseGPU: true}, mapping.Partition{Num: 0, Den: 8})
	if err != nil {
		return nil, err
	}

	am, err := FitModel(app.Name, obs)
	if err != nil {
		return nil, err
	}
	am.ETGPUSec = gpuRes.ExecTimeS
	mg.mu.Lock()
	mg.models[app.Name] = am
	mg.mu.Unlock()
	return am, nil
}

// FitModel performs the paper's regression workflow on a profiling
// dataset: Table I full fit on all observations, drop the largest
// |residual| outlier, log-transform and refit AT+ET (Table II).
func FitModel(appName string, obs []Observation) (*AppModel, error) {
	if len(obs) < 6 {
		return nil, fmt.Errorf("core: %d observations are too few to fit", len(obs))
	}
	ds := &regress.Dataset{
		ResponseName:   "M",
		PredictorNames: []string{"AT", "ET", "PT", "EC"},
		Predictors:     make([][]float64, 4),
	}
	for _, o := range obs {
		ds.Response = append(ds.Response, o.M)
		ds.Predictors[0] = append(ds.Predictors[0], o.ATC)
		ds.Predictors[1] = append(ds.Predictors[1], o.ETS)
		ds.Predictors[2] = append(ds.Predictors[2], o.PTC)
		ds.Predictors[3] = append(ds.Predictors[3], o.ECJ)
	}
	full, err := regress.Fit(ds)
	if err != nil {
		return nil, fmt.Errorf("core: full model fit: %w", err)
	}
	// Drop the collinear predictors (PT, EC mask AT, ET — the paper's
	// observation from Table I), remove the worst outlier, and refit on
	// the log-transformed response.
	drop := full.MaxAbsResidualIndex()
	reduced, err := ds.Select("AT", "ET")
	if err != nil {
		return nil, err
	}
	reduced, err = reduced.DropRow(drop)
	if err != nil {
		return nil, err
	}
	logDS, err := reduced.Log10Response()
	if err != nil {
		return nil, err
	}
	model, err := regress.Fit(logDS)
	if err != nil {
		return nil, fmt.Errorf("core: transformed model fit: %w", err)
	}
	return &AppModel{
		AppName:      appName,
		Model:        model,
		FullModel:    full,
		Dataset:      ds,
		DroppedRow:   drop,
		Observations: append([]Observation(nil), obs...),
		runtime: &runtimeCoeffs{
			intercept: model.Coefficients[0].Estimate,
			at:        model.Coefficients[1].Estimate,
			et:        model.Coefficients[2].Estimate,
		},
	}, nil
}

// Decision is the outcome of the online design-point selection.
type Decision struct {
	// Map and Part form the selected design point (frequencies start
	// at maximum per Fig. 2).
	Map  mapping.Mapping
	Part mapping.Partition
	// PredictedM is the raw model output before decoding.
	PredictedM float64
	// WGCPU is the Eq. (9) CPU fraction before grain snapping.
	WGCPU float64
}

// Decide selects mapping and partition for a required execution time
// (TREQ, seconds) and average temperature (AT, °C), per the paper's online
// optimisation. The app must have been profiled.
func (mg *Manager) Decide(appName string, treqS, atC float64) (Decision, error) {
	am, ok := mg.Model(appName)
	if !ok {
		return Decision{}, fmt.Errorf("core: app %q not profiled", appName)
	}
	if treqS <= 0 {
		return Decision{}, errors.New("core: TREQ must be positive")
	}
	mHat, err := am.PredictM(atC, treqS)
	if err != nil {
		return Decision{}, err
	}
	big, lit := mg.plat.Big(), mg.plat.Little()
	dm := decodeMapping(mHat, big.NumCores, lit.NumCores)

	// Eq. (9): WGCPU = 1 − TREQ/ETGPU, valid when TREQ < ETGPU;
	// otherwise the GPU alone meets the requirement and exploiting
	// heterogeneity buys nothing (the paper's guard).
	wg := 0.0
	if treqS < am.ETGPUSec {
		wg = 1 - treqS/am.ETGPUSec
	}
	part := mapping.NearestPartition(wg)
	dm.UseGPU = part.Num < part.Den
	if dm.UseGPU == false && dm.CPUCores() == 0 {
		dm.UseGPU = true
	}
	return Decision{Map: dm, Part: part, PredictedM: mHat, WGCPU: wg}, nil
}

// decodeMapping turns the predicted core count M into a concrete mapping,
// favouring big cores (they host the OpenCL host thread) and clamping to
// the platform.
func decodeMapping(m float64, maxBig, maxLit int) mapping.Mapping {
	n := int(m + 0.5)
	if n < 1 {
		n = 1
	}
	if n > maxBig+maxLit {
		n = maxBig + maxLit
	}
	nb := (n + 1) / 2
	if nb > maxBig {
		nb = maxBig
	}
	nl := n - nb
	if nl > maxLit {
		nl = maxLit
	}
	return mapping.Mapping{Big: nb, Little: nl}
}

// DecidePartition applies only Eq. (9) for a pinned mapping: the CPU
// work-group fraction WGCPU = 1 − TREQ/ETGPU snapped to the paper's
// grains. Used when the evaluation pins the mapping (Fig. 5's 2L+4B).
func (mg *Manager) DecidePartition(appName string, treqS float64) (mapping.Partition, error) {
	am, ok := mg.Model(appName)
	if !ok {
		return mapping.Partition{}, fmt.Errorf("core: app %q not profiled", appName)
	}
	if treqS <= 0 {
		return mapping.Partition{}, errors.New("core: TREQ must be positive")
	}
	wg := 0.0
	if treqS < am.ETGPUSec {
		wg = 1 - treqS/am.ETGPUSec
	}
	return mapping.NearestPartition(wg), nil
}

// Run executes an application under TEEM end to end: decide the design
// point from (TREQ, AT), then run with the online controller using the
// steady-regime protocol. The app must have been profiled.
func (mg *Manager) Run(app *workload.App, treqS, atC float64) (*sim.Result, Decision, error) {
	dec, err := mg.Decide(app.Name, treqS, atC)
	if err != nil {
		return nil, Decision{}, err
	}
	cfg := sim.Config{
		Platform: mg.plat,
		Net:      mg.net,
		App:      app,
		Map:      dec.Map,
		Part:     dec.Part,
		Governor: NewController(mg.params),
	}
	res, err := sim.RunWarm(cfg)
	if err != nil {
		return nil, dec, err
	}
	return res, dec, nil
}

// RunAt executes an application under TEEM with an explicit design point
// (used by the Fig. 1 motivation experiment, which pins 2L+3B at
// partition 1024).
func (mg *Manager) RunAt(app *workload.App, m mapping.Mapping, part mapping.Partition) (*sim.Result, error) {
	cfg := sim.Config{
		Platform: mg.plat,
		Net:      mg.net,
		App:      app,
		Map:      m,
		Part:     part,
		Governor: NewController(mg.params),
	}
	return sim.RunWarm(cfg)
}
