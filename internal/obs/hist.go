package obs

// Histogram is a fixed-bucket histogram with cumulative-on-render
// semantics: Observe stores per-bucket counts, Snapshot hands the raw
// counts to the exposition writer, which renders the cumulative
// `_bucket` series Prometheus expects. It is NOT internally
// synchronised — callers guard it with the mutex that already protects
// their metric state (teemd's metrics mutex), keeping one locking
// discipline for the whole surface.
type Histogram struct {
	bounds []float64 // upper bounds, strictly increasing
	counts []int64   // one per bound; values above the last fall through to Count only
	sum    float64
	count  int64
}

// NewHistogram builds a histogram over the given strictly-increasing
// upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds))}
}

// LatencyBuckets is the default bucket ladder for job latencies and run
// durations: exponential from 1 ms to ~65 s, matching the spread
// between a cached preset cell and a long fault-retried grid.
func LatencyBuckets() []float64 {
	b := make([]float64, 0, 17)
	for v := 0.001; v < 66; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
}

// HistSnapshot is a point-in-time copy of a histogram, safe to render
// after the guarding lock is released.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Bounds: h.bounds,
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}
