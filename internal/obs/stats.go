package obs

import (
	"fmt"
	"strings"
	"time"
)

// RunStats is the engine flight recorder: plain int64 counters embedded
// by value in sim.Engine and incremented with ordinary ++ on the tick
// and superstep paths, so instrumentation adds zero allocations and
// stays clean under the teemvet hotpath analyzer. Per-phase wall time
// is opt-in: the nanos fields stay zero unless the caller supplied a
// clock (sim.Config.Clock), so a default run performs no clock reads
// and remains deterministic.
type RunStats struct {
	// Time advancement: plain ticks versus superstep jumps.
	Ticks          int64 // single-dt engine ticks executed
	Supersteps     int64 // successful multi-tick jumps
	SuperstepTicks int64 // ticks covered by those jumps
	MaxJump        int64 // longest single jump, in ticks

	// Per-reason superstep guard rejections: why a jump did NOT fire.
	RejectEvent    int64 // scenario event or horizon too close
	RejectGovernor int64 // governor epoch boundary or unstable epoch
	RejectMeter    int64 // meter sampling instant inside the span
	RejectWork     int64 // work depletion / mixed trajectory direction
	RejectTMU      int64 // thermal protection tripped or trip risk
	RejectLeakage  int64 // leakage linearisation regime boundary

	// Cache effectiveness.
	PropCacheHits   int64 // thermal propagator cache (matrix exponentials)
	PropCacheMisses int64
	JumpBlockHits   int64 // power-of-two jump-block cache
	JumpBlockMisses int64
	PoolHits        int64 // per-engine superstep pool, keyed by leakage slope
	PoolMisses      int64

	// Control-plane events.
	GovernorEpochs int64 // governor invocations
	TMUTrips       int64 // thermal throttle engagements
	TMUReleases    int64 // throttle releases

	// Opt-in per-phase wall time (zero unless a clock was supplied).
	ThermalNanos  int64
	PowerNanos    int64
	GovernorNanos int64
	QueueNanos    int64
}

// Add folds o into s; used to aggregate flight recorders across grid
// cells or load-generator runs.
func (s *RunStats) Add(o RunStats) {
	s.Ticks += o.Ticks
	s.Supersteps += o.Supersteps
	s.SuperstepTicks += o.SuperstepTicks
	if o.MaxJump > s.MaxJump {
		s.MaxJump = o.MaxJump
	}
	s.RejectEvent += o.RejectEvent
	s.RejectGovernor += o.RejectGovernor
	s.RejectMeter += o.RejectMeter
	s.RejectWork += o.RejectWork
	s.RejectTMU += o.RejectTMU
	s.RejectLeakage += o.RejectLeakage
	s.PropCacheHits += o.PropCacheHits
	s.PropCacheMisses += o.PropCacheMisses
	s.JumpBlockHits += o.JumpBlockHits
	s.JumpBlockMisses += o.JumpBlockMisses
	s.PoolHits += o.PoolHits
	s.PoolMisses += o.PoolMisses
	s.GovernorEpochs += o.GovernorEpochs
	s.TMUTrips += o.TMUTrips
	s.TMUReleases += o.TMUReleases
	s.ThermalNanos += o.ThermalNanos
	s.PowerNanos += o.PowerNanos
	s.GovernorNanos += o.GovernorNanos
	s.QueueNanos += o.QueueNanos
}

// Rejections is the total number of superstep guard rejections.
func (s *RunStats) Rejections() int64 {
	return s.RejectEvent + s.RejectGovernor + s.RejectMeter +
		s.RejectWork + s.RejectTMU + s.RejectLeakage
}

// String renders the flight recorder as an indented multi-line block,
// the form teemscenario -stats and teemd load -stats print.
func (s *RunStats) String() string {
	var b strings.Builder
	total := s.Ticks + s.SuperstepTicks
	fmt.Fprintf(&b, "time: %d ticks advanced (%d stepped, %d jumped in %d supersteps, max jump %d)\n",
		total, s.Ticks, s.SuperstepTicks, s.Supersteps, s.MaxJump)
	fmt.Fprintf(&b, "superstep rejections: event %d  governor-epoch %d  meter %d  work %d  tmu %d  leakage-regime %d\n",
		s.RejectEvent, s.RejectGovernor, s.RejectMeter, s.RejectWork, s.RejectTMU, s.RejectLeakage)
	fmt.Fprintf(&b, "caches (hit/miss): propagator %d/%d  jump-block %d/%d  superstep-pool %d/%d\n",
		s.PropCacheHits, s.PropCacheMisses, s.JumpBlockHits, s.JumpBlockMisses, s.PoolHits, s.PoolMisses)
	fmt.Fprintf(&b, "control: governor epochs %d  tmu trips %d  releases %d",
		s.GovernorEpochs, s.TMUTrips, s.TMUReleases)
	if wall := s.ThermalNanos + s.PowerNanos + s.GovernorNanos + s.QueueNanos; wall > 0 {
		fmt.Fprintf(&b, "\nphase wall: thermal %s  power %s  governor %s  queue %s",
			time.Duration(s.ThermalNanos), time.Duration(s.PowerNanos),
			time.Duration(s.GovernorNanos), time.Duration(s.QueueNanos))
	}
	return b.String()
}
