package obs

import (
	"regexp"
	"strings"
	"testing"
)

// TestExpositionGolden pins the writer's byte-exact output for a small
// fixed exposition: HELP/TYPE ordering, label escaping, histogram
// rendering with cumulative buckets.
func TestExpositionGolden(t *testing.T) {
	var e Exposition
	e.Metric("teemd_jobs_done_total", "counter", "Jobs completed successfully.").Sample(42)
	m := e.Metric("teemd_tenant_submitted_total", "counter", "Per-tenant submissions.")
	m.Sample(7, "tenant", `a"b\c`)
	m.Sample(9, "tenant", "plain")
	h := NewHistogram(0.1, 1, 10)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)
	e.Histogram("teemd_job_latency_seconds", "Submit to done latency.", h.Snapshot())

	want := `# HELP teemd_jobs_done_total Jobs completed successfully.
# TYPE teemd_jobs_done_total counter
teemd_jobs_done_total 42
# HELP teemd_tenant_submitted_total Per-tenant submissions.
# TYPE teemd_tenant_submitted_total counter
teemd_tenant_submitted_total{tenant="a\"b\\c"} 7
teemd_tenant_submitted_total{tenant="plain"} 9
# HELP teemd_job_latency_seconds Submit to done latency.
# TYPE teemd_job_latency_seconds histogram
teemd_job_latency_seconds_bucket{le="0.1"} 1
teemd_job_latency_seconds_bucket{le="1"} 3
teemd_job_latency_seconds_bucket{le="10"} 3
teemd_job_latency_seconds_bucket{le="+Inf"} 4
teemd_job_latency_seconds_sum 100.05
teemd_job_latency_seconds_count 4
`
	if got := string(e.Bytes()); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition(strings.NewReader(want)); err != nil {
		t.Errorf("golden exposition fails its own validator: %v", err)
	}
}

// TestValidateExposition exercises the validator's rejection paths.
func TestValidateExposition(t *testing.T) {
	valid := `# HELP x_total things
# TYPE x_total counter
x_total{a="b"} 1
`
	if err := ValidateExposition(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}

	cases := map[string]string{
		"no TYPE": `x_total 1
`,
		"no HELP": `# TYPE x_total counter
x_total 1
`,
		"TYPE after samples": `# HELP x things
# TYPE x gauge
x 1
# TYPE x counter
`,
		"duplicate TYPE": `# HELP x things
# TYPE x gauge
# TYPE x gauge
`,
		"unknown type": `# HELP x things
# TYPE x widget
`,
		"negative counter": `# HELP x_total things
# TYPE x_total counter
x_total -1
`,
		"duplicate series": `# HELP x things
# TYPE x gauge
x{a="b"} 1
x{a="b"} 2
`,
		"bad metric name": `# HELP 9x things
# TYPE 9x gauge
`,
		"bad label name": `# HELP x things
# TYPE x gauge
x{9a="b"} 1
`,
		"bad escape": `# HELP x things
# TYPE x gauge
x{a="b\t"} 1
`,
		"unterminated label": `# HELP x things
# TYPE x gauge
x{a="b} 1
`,
		"unsorted buckets": `# HELP h things
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="0.5"} 2
h_bucket{le="+Inf"} 2
h_sum 1
h_count 2
`,
		"decreasing buckets": `# HELP h things
# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="2"} 1
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
`,
		"missing +Inf": `# HELP h things
# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
`,
		"count mismatch": `# HELP h things
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 3
h_sum 1
h_count 4
`,
	}
	for name, body := range cases {
		if err := ValidateExposition(strings.NewReader(body)); err == nil {
			t.Errorf("%s: validator accepted invalid exposition:\n%s", name, body)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets()...)
	for _, v := range []float64{0.0005, 0.003, 0.003, 1.5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 0.0005+0.003+0.003+1.5+100 {
		t.Errorf("sum = %v", s.Sum)
	}
	var inBuckets int64
	for _, c := range s.Counts {
		inBuckets += c
	}
	// 100 s overflows the last bucket and lives only in _count/+Inf.
	if inBuckets != 4 {
		t.Errorf("bucketed observations = %d, want 4", inBuckets)
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Errorf("trace ids collide: %s", a)
	}
	if len(a) != 16 {
		t.Errorf("trace id %q has length %d, want 16", a, len(a))
	}
}

// The entropy-failure fallback must keep the documented 16-hex-char
// shape, not a distinguishable variant.
func TestFallbackTraceIDFormat(t *testing.T) {
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := fallbackTraceID(), fallbackTraceID()
	if a == b {
		t.Errorf("fallback trace ids collide: %s", a)
	}
	for _, id := range []string{a, b} {
		if !hexID.MatchString(id) {
			t.Errorf("fallback trace id %q is not 16 hex chars", id)
		}
	}
}

func TestRunStatsAddAndString(t *testing.T) {
	var agg RunStats
	agg.Add(RunStats{Ticks: 10, Supersteps: 2, SuperstepTicks: 100, MaxJump: 64, RejectMeter: 3})
	agg.Add(RunStats{Ticks: 5, MaxJump: 32, TMUTrips: 1, ThermalNanos: 1000})
	if agg.Ticks != 15 || agg.MaxJump != 64 || agg.Rejections() != 3 {
		t.Errorf("aggregate = %+v", agg)
	}
	out := agg.String()
	for _, want := range []string{"115 ticks advanced", "max jump 64", "meter 3", "tmu trips 1", "phase wall"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	var noTiming RunStats
	if strings.Contains(noTiming.String(), "phase wall") {
		t.Error("zero-timing render should omit the phase wall line")
	}
}
