package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text exposition (format 0.0.4)
// for structural validity: every sample belongs to a family with a
// `# TYPE` (and `# HELP`) line declared before it, names and labels are
// well formed with valid escaping, no duplicate series appear, counter
// samples are finite and non-negative (the in-exposition face of
// monotonicity), and histogram families carry sorted cumulative
// `le` buckets ending at +Inf whose terminal bucket equals `_count`.
// It is both a test oracle (the exposition golden/validator tests) and
// the check teemobs and the obs gate run against a live daemon.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	type family struct {
		typ     string
		help    bool
		sampled bool
	}
	families := make(map[string]*family)
	seen := make(map[string]bool) // duplicate-series detection
	type bucketState struct {
		prevLe  float64
		prevVal float64
		infVal  float64
		hasInf  bool
		count   float64
		hasCnt  bool
	}
	hists := make(map[string]*bucketState) // keyed by family + non-le labels

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) error {
			return fmt.Errorf("exposition line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return fail("invalid metric name %q", name)
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			switch fields[1] {
			case "HELP":
				if f.help {
					return fail("duplicate HELP for %s", name)
				}
				f.help = true
			case "TYPE":
				if len(fields) < 4 {
					return fail("TYPE without a type")
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fail("unknown type %q", fields[3])
				}
				if f.typ != "" {
					return fail("duplicate TYPE for %s", name)
				}
				if f.sampled {
					return fail("TYPE for %s after its samples", name)
				}
				f.typ = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fail("%v", err)
		}
		famName, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name {
				if f := families[base]; f != nil && f.typ == "histogram" {
					famName, suffix = base, sfx
				}
				break
			}
		}
		f := families[famName]
		if f == nil || f.typ == "" {
			return fail("sample for %s has no preceding # TYPE", famName)
		}
		if !f.help {
			return fail("sample for %s has no preceding # HELP", famName)
		}
		f.sampled = true

		series := name + "{" + strings.Join(labels, ",") + "}"
		if seen[series] {
			return fail("duplicate series %s", series)
		}
		seen[series] = true

		if f.typ == "counter" && (value < 0 || math.IsNaN(value) || math.IsInf(value, 0)) {
			return fail("counter %s has non-monotone-compatible value %v", name, value)
		}

		if f.typ == "histogram" {
			le, rest := "", make([]string, 0, len(labels))
			for _, l := range labels {
				if v, ok := strings.CutPrefix(l, "le="); ok {
					le = v
				} else {
					rest = append(rest, l)
				}
			}
			key := famName + "{" + strings.Join(rest, ",") + "}"
			st := hists[key]
			if st == nil {
				st = &bucketState{prevLe: math.Inf(-1)}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					return fail("histogram bucket without an le label")
				}
				ub, err := parseValue(strings.Trim(le, `"`))
				if err != nil {
					return fail("bad le value %s", le)
				}
				if ub <= st.prevLe {
					return fail("histogram %s buckets not sorted (le %v after %v)", famName, ub, st.prevLe)
				}
				if value < st.prevVal {
					return fail("histogram %s bucket counts decrease at le=%v", famName, ub)
				}
				st.prevLe, st.prevVal = ub, value
				if math.IsInf(ub, 1) {
					st.hasInf, st.infVal = true, value
				}
			case "_count":
				st.hasCnt, st.count = true, value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, f := range families {
		if f.typ == "histogram" && f.sampled {
			for key, st := range hists {
				if !strings.HasPrefix(key, name+"{") {
					continue
				}
				if !st.hasInf {
					return fmt.Errorf("exposition: histogram series %s has no +Inf bucket", key)
				}
				if st.hasCnt && st.count != st.infVal {
					return fmt.Errorf("exposition: histogram series %s _count %v != +Inf bucket %v", key, st.count, st.infVal)
				}
			}
		}
	}
	return nil
}

// parseSample splits `name{label="v",...} value` into its parts,
// validating label syntax and escape sequences. Labels come back as
// raw `key="escaped"` strings in declaration order.
func parseSample(line string) (name string, labels []string, value float64, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && line[i] == ',' {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			start := i
			for i < len(line) && line[i] != '=' {
				i++
			}
			lname := line[start:i]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			if i >= len(line) || line[i] != '=' {
				return "", nil, 0, fmt.Errorf("label %q missing =", lname)
			}
			i++
			if i >= len(line) || line[i] != '"' {
				return "", nil, 0, fmt.Errorf("label %q value not quoted", lname)
			}
			i++
			vstart := i
			for i < len(line) && line[i] != '"' {
				if line[i] == '\\' {
					if i+1 >= len(line) {
						return "", nil, 0, fmt.Errorf("label %q truncated escape", lname)
					}
					switch line[i+1] {
					case '\\', '"', 'n':
					default:
						return "", nil, 0, fmt.Errorf("label %q invalid escape \\%c", lname, line[i+1])
					}
					i++
				}
				i++
			}
			if i >= len(line) {
				return "", nil, 0, fmt.Errorf("label %q unterminated value", lname)
			}
			labels = append(labels, lname+`="`+line[vstart:i]+`"`)
			i++ // closing quote
		}
	}
	rest := strings.TrimSpace(line[i:])
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", nil, 0, fmt.Errorf("malformed sample body %q", rest)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validLabelName(s string) bool {
	if s == "" || s == "__" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
