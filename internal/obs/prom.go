package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Exposition accumulates metric families in Prometheus text exposition
// format 0.0.4 (the `text/plain; version=0.0.4` wire form): one
// `# HELP` and `# TYPE` line per family followed by its samples.
// Families render in the order first declared; callers keep output
// byte-stable by declaring in a fixed order and sorting label sets.
type Exposition struct {
	buf bytes.Buffer
}

// ContentType is the Content-Type for the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Metric opens a new family: mtype is counter, gauge, histogram or
// untyped. Help text has newlines and backslashes escaped per the
// format. Returns a handle to append samples.
func (e *Exposition) Metric(name, mtype, help string) *Metric {
	fmt.Fprintf(&e.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&e.buf, "# TYPE %s %s\n", name, mtype)
	return &Metric{e: e, name: name}
}

// Metric is one open family; Sample appends sample lines to it.
type Metric struct {
	e    *Exposition
	name string
}

// Sample appends one sample with the given label key/value pairs
// (alternating key, value). Label values are escaped per the format.
func (m *Metric) Sample(v float64, labels ...string) {
	m.sample("", v, labels)
}

func (m *Metric) sample(suffix string, v float64, labels []string) {
	b := &m.e.buf
	b.WriteString(m.name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(labels[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labels[i+1]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(FormatValue(v))
	b.WriteByte('\n')
}

// Histogram writes a full histogram family from a snapshot: cumulative
// `_bucket` lines with `le` labels (ending at +Inf), then `_sum` and
// `_count`. Extra labels apply to every line.
func (e *Exposition) Histogram(name, help string, h HistSnapshot, labels ...string) {
	m := e.Metric(name, "histogram", help)
	cum := int64(0)
	for i, ub := range h.Bounds {
		cum += h.Counts[i]
		m.sample("_bucket", float64(cum), append(append([]string{}, labels...), "le", FormatValue(ub)))
	}
	m.sample("_bucket", float64(h.Count), append(append([]string{}, labels...), "le", "+Inf"))
	m.sample("_sum", h.Sum, labels)
	m.sample("_count", float64(h.Count), labels)
}

// WriteTo writes the accumulated exposition.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.buf.Bytes())
	return int64(n), err
}

// Bytes returns the accumulated exposition.
func (e *Exposition) Bytes() []byte { return e.buf.Bytes() }

// FormatValue renders a sample value: shortest round-trip float, with
// the format's spellings for infinities and NaN.
func FormatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the format: backslash, double
// quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SortedKeys returns the map's keys sorted, for byte-stable per-tenant
// label ordering in expositions.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
