// Package obs is the observability layer: the engine flight recorder
// (RunStats), trace-id minting and span schema for teemd's job tracing,
// a Prometheus text-exposition writer and validator, and fixed-bucket
// histograms for latency surfaces.
//
// The package sits deliberately OUTSIDE the deterministic simulation
// core (it is not in the teemvet determinism analyzer's core list), so
// it may read wall clocks. Core packages never import time through it:
// they hold a pre-acquired `func() int64` clock value (Nanotime) that
// the caller opts into, so a default simulation run performs zero clock
// reads and stays bit-reproducible.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// clockBase anchors Nanotime; time.Since carries the monotonic reading.
var clockBase = time.Now()

// Nanotime returns monotonic elapsed nanoseconds since process start.
// It is handed to the engine as a plain func value (sim.Config.Clock)
// so the deterministic core never names the time package; when the
// value is nil the engine performs no clock reads at all.
func Nanotime() int64 { return int64(time.Since(clockBase)) }

// traceCounter backs the collision-proof fallback when the system
// entropy source is unavailable.
var traceCounter atomic.Uint64

// NewTraceID mints a 16-hex-character trace id. Trace ids are per-job
// identity, never part of a request hash: a cached duplicate submission
// shares the original job's trace.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fallbackTraceID()
	}
	return hex.EncodeToString(b[:])
}

// fallbackTraceID mints a collision-proof id when the entropy source is
// unavailable. It keeps the same 16-hex-char shape as the random path
// so consumers see one format either way.
func fallbackTraceID() string {
	return fmt.Sprintf("%016x", traceCounter.Add(1))
}

// Span is one NDJSON trace event on teemd's /trace stream: a point in a
// job's lifecycle (submit → queue → retry → run → journal-commit →
// done/shed/cancelled, plus recover after a restart). Spans carry the
// job's trace id, so a job's life is reconstructable post-mortem by
// grepping one id across the submit response, the telemetry stream,
// the journal, and /trace — including across daemon restarts.
//
// Ordering: "submit" and "queue" precede every other span of a trace,
// but the journal commit runs concurrently with the worker, so
// "journal-commit" may interleave with or follow "run". Consumers that
// need causal order should sort by At rather than stream position.
type Span struct {
	Trace   string    `json:"trace"`
	Job     string    `json:"job,omitempty"`
	Phase   string    `json:"phase"`
	At      time.Time `json:"at"`
	Tenant  string    `json:"tenant,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}
