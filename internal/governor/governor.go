// Package governor implements the stock Linux DVFS policies used as
// baselines in the TEEM paper: ondemand (the Fig. 1(a) baseline),
// performance, powersave, userspace and conservative. Policies drive the
// sim.Machine interface the way the kernel drives cpufreq, while the
// engine's hardware thermal protection (TMU trip/release) acts on top of
// them exactly as the Exynos firmware does.
package governor

import (
	"fmt"

	"teem/internal/sim"
	"teem/internal/soc"
)

func setAll(m sim.Machine, pick func(c *soc.Cluster) int) error {
	p := m.Platform()
	for i := range p.Clusters {
		c := &p.Clusters[i]
		if err := m.SetClusterFreqMHz(c.Name, pick(c)); err != nil {
			return err
		}
	}
	return nil
}

// Performance pins every cluster at its maximum frequency.
type Performance struct{}

// Name implements sim.Governor.
func (Performance) Name() string { return "performance" }

// PeriodS implements sim.Governor.
func (Performance) PeriodS() float64 { return 0.1 }

// Start implements sim.Governor.
func (Performance) Start(m sim.Machine) error {
	return setAll(m, func(c *soc.Cluster) int { return c.MaxFreqMHz() })
}

// Act implements sim.Governor. Frequencies may have been lowered by
// hardware throttling; performance keeps requesting the maximum (the
// engine clamps while throttled).
func (Performance) Act(m sim.Machine) error {
	return setAll(m, func(c *soc.Cluster) int { return c.MaxFreqMHz() })
}

// Powersave pins every cluster at its minimum frequency.
type Powersave struct{}

// Name implements sim.Governor.
func (Powersave) Name() string { return "powersave" }

// PeriodS implements sim.Governor.
func (Powersave) PeriodS() float64 { return 0.1 }

// Start implements sim.Governor.
func (Powersave) Start(m sim.Machine) error {
	return setAll(m, func(c *soc.Cluster) int { return c.MinFreqMHz() })
}

// Act implements sim.Governor.
func (Powersave) Act(sim.Machine) error { return nil }

// Userspace holds externally chosen fixed frequencies.
type Userspace struct {
	// BigMHz, LittleMHz, GPUMHz are the pinned frequencies; zero means
	// the cluster maximum.
	BigMHz, LittleMHz, GPUMHz int
}

// Name implements sim.Governor.
func (*Userspace) Name() string { return "userspace" }

// PeriodS implements sim.Governor.
func (*Userspace) PeriodS() float64 { return 0.1 }

// Start implements sim.Governor.
func (u *Userspace) Start(m sim.Machine) error {
	p := m.Platform()
	pick := map[soc.ClusterKind]int{
		soc.BigCPU:    u.BigMHz,
		soc.LittleCPU: u.LittleMHz,
		soc.GPU:       u.GPUMHz,
	}
	for i := range p.Clusters {
		c := &p.Clusters[i]
		f := pick[c.Kind]
		if f == 0 {
			f = c.MaxFreqMHz()
		}
		if err := m.SetClusterFreqMHz(c.Name, f); err != nil {
			return err
		}
	}
	return nil
}

// Act implements sim.Governor.
func (u *Userspace) Act(sim.Machine) error { return nil }

// Ondemand is the classic Linux utilisation governor: above UpThreshold
// the cluster jumps to maximum frequency, below it the frequency is
// proportional to utilisation. Combined with the engine's hardware
// thermal protection this reproduces the 2000↔900 MHz sawtooth of the
// paper's Fig. 1(a).
type Ondemand struct {
	// UpThreshold is the utilisation above which the governor jumps to
	// the maximum (Linux default 0.80 ≙ 80).
	UpThreshold float64
	// SamplingS is the control period (default 0.1 s).
	SamplingS float64
}

// NewOndemand returns an ondemand governor with kernel defaults.
func NewOndemand() *Ondemand { return &Ondemand{UpThreshold: 0.80, SamplingS: 0.1} }

// Name implements sim.Governor.
func (*Ondemand) Name() string { return "ondemand" }

// PeriodS implements sim.Governor.
func (o *Ondemand) PeriodS() float64 {
	if o.SamplingS <= 0 {
		return 0.1
	}
	return o.SamplingS
}

// Start implements sim.Governor. Linux boots clusters at a mid OPP; the
// first sampling period then reacts to load.
func (o *Ondemand) Start(m sim.Machine) error {
	if o.UpThreshold <= 0 || o.UpThreshold > 1 {
		return fmt.Errorf("governor: ondemand UpThreshold %g outside (0,1]", o.UpThreshold)
	}
	return setAll(m, func(c *soc.Cluster) int { return c.MaxFreqMHz() })
}

// Act implements sim.Governor.
func (o *Ondemand) Act(m sim.Machine) error {
	p := m.Platform()
	for i := range p.Clusters {
		c := &p.Clusters[i]
		util := m.ClusterUtil(c.Name)
		var want int
		if util >= o.UpThreshold {
			want = c.MaxFreqMHz()
		} else {
			// Scale so the next period would run at ~UpThreshold
			// utilisation.
			cur := m.ClusterFreqMHz(c.Name)
			want = int(float64(cur) * util / o.UpThreshold)
			want = c.CeilOPP(want).FreqMHz
		}
		if err := m.SetClusterFreqMHz(c.Name, want); err != nil {
			return err
		}
	}
	return nil
}

// Conservative steps one OPP at a time toward the load, mimicking the
// Linux conservative governor.
type Conservative struct {
	// UpThreshold and DownThreshold bound the dead zone (defaults 0.8
	// and 0.2).
	UpThreshold, DownThreshold float64
	// SamplingS is the control period (default 0.1 s).
	SamplingS float64
}

// NewConservative returns a conservative governor with kernel defaults.
func NewConservative() *Conservative {
	return &Conservative{UpThreshold: 0.8, DownThreshold: 0.2, SamplingS: 0.1}
}

// Name implements sim.Governor.
func (*Conservative) Name() string { return "conservative" }

// PeriodS implements sim.Governor.
func (c *Conservative) PeriodS() float64 {
	if c.SamplingS <= 0 {
		return 0.1
	}
	return c.SamplingS
}

// Start implements sim.Governor.
func (c *Conservative) Start(m sim.Machine) error {
	if c.UpThreshold <= c.DownThreshold {
		return fmt.Errorf("governor: conservative thresholds inverted (%g ≤ %g)", c.UpThreshold, c.DownThreshold)
	}
	return setAll(m, func(cl *soc.Cluster) int { return cl.MinFreqMHz() })
}

// Act implements sim.Governor.
func (c *Conservative) Act(m sim.Machine) error {
	p := m.Platform()
	for i := range p.Clusters {
		cl := &p.Clusters[i]
		util := m.ClusterUtil(cl.Name)
		cur := m.ClusterFreqMHz(cl.Name)
		var want int
		switch {
		case util >= c.UpThreshold:
			want = cl.CeilOPP(cur + 1).FreqMHz // one OPP up
		case util <= c.DownThreshold:
			want = cl.FloorOPP(cur - 1).FreqMHz // one OPP down
		default:
			continue
		}
		if err := m.SetClusterFreqMHz(cl.Name, want); err != nil {
			return err
		}
	}
	return nil
}

// --- superstep purity markers -------------------------------------------------
//
// Every stock policy above decides from ClusterUtil and ClusterFreqMHz
// alone — no sensors, no time, no internal state — so each implements
// sim.UtilOnlyGovernor: an epoch that changed no frequency is a fixed
// point, and the engine's event-horizon superstep may provably skip
// further epochs while utilisations and frequencies hold. A policy that
// reads anything else (like the sensor-driven TEEM controller) must not
// carry this marker.

// UtilOnly implements sim.UtilOnlyGovernor: performance requests the
// platform maximum regardless of input.
func (Performance) UtilOnly() bool { return true }

// UtilOnly implements sim.UtilOnlyGovernor: powersave's Act is a no-op.
func (Powersave) UtilOnly() bool { return true }

// UtilOnly implements sim.UtilOnlyGovernor: userspace's Act is a no-op.
func (*Userspace) UtilOnly() bool { return true }

// UtilOnly implements sim.UtilOnlyGovernor: ondemand maps (utilisation,
// current frequency) to a target OPP and nothing else.
func (*Ondemand) UtilOnly() bool { return true }

// UtilOnly implements sim.UtilOnlyGovernor: conservative steps one OPP
// from (utilisation, current frequency) and keeps no other state.
func (*Conservative) UtilOnly() bool { return true }
