package governor

import (
	"testing"

	"teem/internal/mapping"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func baseConfig(g sim.Governor) sim.Config {
	return sim.Config{
		Platform: soc.Exynos5422(),
		Net:      thermal.Exynos5422Network(),
		App:      workload.Covariance(),
		Map:      mapping.Mapping{Big: 3, Little: 2, UseGPU: true},
		Part:     mapping.Partition{Num: 4, Den: 8},
		Governor: g,
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		g    sim.Governor
		want string
	}{
		{Performance{}, "performance"},
		{Powersave{}, "powersave"},
		{&Userspace{}, "userspace"},
		{NewOndemand(), "ondemand"},
		{NewConservative(), "conservative"},
	}
	for _, c := range cases {
		if got := c.g.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
		if c.g.PeriodS() <= 0 {
			t.Errorf("%s: non-positive period", c.want)
		}
	}
}

func TestPerformancePinsMax(t *testing.T) {
	cfg := baseConfig(Performance{})
	cfg.DisableHWProtect = true
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	ci := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		if s.FreqsMHz[ci] != 2000 {
			t.Errorf("performance governor let frequency drop to %d", s.FreqsMHz[ci])
			break
		}
	}
}

func TestPowersavePinsMin(t *testing.T) {
	cfg := baseConfig(Powersave{})
	cfg.MaxTimeS = 5 // don't wait for a 200 MHz run to finish
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	ci := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		if s.FreqsMHz[ci] != 200 {
			t.Errorf("powersave governor at %d MHz", s.FreqsMHz[ci])
			break
		}
	}
}

func TestUserspaceHoldsRequestedFreqs(t *testing.T) {
	g := &Userspace{BigMHz: 1300, LittleMHz: 800, GPUMHz: 420}
	cfg := baseConfig(g)
	cfg.DisableHWProtect = true
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	bi := res.Trace.ClusterIndex("A15")
	li := res.Trace.ClusterIndex("A7")
	gi := res.Trace.ClusterIndex("MaliT628")
	s := res.Trace.Samples[res.Trace.Len()/2]
	if s.FreqsMHz[bi] != 1300 || s.FreqsMHz[li] != 800 || s.FreqsMHz[gi] != 420 {
		t.Errorf("userspace freqs = %d/%d/%d, want 1300/800/420",
			s.FreqsMHz[bi], s.FreqsMHz[li], s.FreqsMHz[gi])
	}
}

func TestUserspaceZeroMeansMax(t *testing.T) {
	g := &Userspace{}
	cfg := baseConfig(g)
	cfg.DisableHWProtect = true
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(e); err != nil {
		t.Fatal(err)
	}
	if f := e.ClusterFreqMHz("A15"); f != 2000 {
		t.Errorf("zero request pinned %d, want max 2000", f)
	}
}

// Ondemand under full load runs at max; with the thermal trip enabled the
// classic 2000↔900 sawtooth appears (paper Fig. 1a).
func TestOndemandSawtooth(t *testing.T) {
	cfg := baseConfig(NewOndemand())
	cfg.Map = mapping.Mapping{Big: 4, Little: 2, UseGPU: true} // hotter
	res, err := sim.RunWarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThrottleEvents == 0 {
		t.Fatal("expected hardware throttling under ondemand full load")
	}
	saw2000, saw900 := false, false
	ci := res.Trace.ClusterIndex("A15")
	for _, s := range res.Trace.Samples {
		switch s.FreqsMHz[ci] {
		case 2000:
			saw2000 = true
		case 900:
			saw900 = true
		}
	}
	if !saw2000 || !saw900 {
		t.Errorf("sawtooth incomplete: saw2000=%v saw900=%v", saw2000, saw900)
	}
}

func TestOndemandValidation(t *testing.T) {
	g := &Ondemand{UpThreshold: 2}
	cfg := baseConfig(g)
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(e); err == nil {
		t.Error("UpThreshold > 1 should be rejected")
	}
}

func TestConservativeStepsUp(t *testing.T) {
	cfg := baseConfig(NewConservative())
	cfg.DisableHWProtect = true
	cfg.MaxTimeS = 30
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Starting from min, under full load the governor must climb.
	ci := res.Trace.ClusterIndex("A15")
	first := res.Trace.Samples[0].FreqsMHz[ci]
	last := res.Trace.Samples[res.Trace.Len()-1].FreqsMHz[ci]
	if first > 400 {
		t.Errorf("conservative should start near min, got %d", first)
	}
	if last <= first {
		t.Errorf("conservative did not step up: %d → %d", first, last)
	}
}

// fakeMachine gives boundary tests exact control over the utilisation and
// frequency a governor observes, without running a simulation.
type fakeMachine struct {
	plat  *soc.Platform
	freqs map[string]int
	utils map[string]float64
}

func newFakeMachine() *fakeMachine {
	p := soc.Exynos5422()
	f := &fakeMachine{plat: p, freqs: map[string]int{}, utils: map[string]float64{}}
	for i := range p.Clusters {
		f.freqs[p.Clusters[i].Name] = p.Clusters[i].MinFreqMHz()
	}
	return f
}

func (f *fakeMachine) TimeS() float64          { return 0 }
func (f *fakeMachine) Platform() *soc.Platform { return f.plat }
func (f *fakeMachine) SensorC(string) float64  { return 40 }
func (f *fakeMachine) ClusterFreqMHz(c string) int {
	return f.freqs[c]
}
func (f *fakeMachine) SetClusterFreqMHz(c string, mhz int) error {
	cl := f.plat.FindCluster(c)
	if cl == nil {
		return nil
	}
	f.freqs[c] = cl.NearestOPP(mhz).FreqMHz
	return nil
}
func (f *fakeMachine) ClusterUtil(c string) float64 { return f.utils[c] }
func (f *fakeMachine) Throttled() bool              { return false }

// Conservative at the minimum OPP with idle load must hold the minimum —
// stepping "one OPP down" from the bottom of the table must not wrap,
// climb, or error.
func TestConservativeHoldsAtMinOPP(t *testing.T) {
	m := newFakeMachine()
	g := NewConservative()
	for i := range m.plat.Clusters {
		name := m.plat.Clusters[i].Name
		m.freqs[name] = m.plat.Clusters[i].MinFreqMHz()
		m.utils[name] = 0
	}
	if err := g.Act(m); err != nil {
		t.Fatal(err)
	}
	for i := range m.plat.Clusters {
		c := &m.plat.Clusters[i]
		if got := m.freqs[c.Name]; got != c.MinFreqMHz() {
			t.Errorf("%s: idle at min stepped to %d, want to hold %d", c.Name, got, c.MinFreqMHz())
		}
	}
}

// Conservative at the maximum OPP under full load must hold the maximum.
func TestConservativeHoldsAtMaxOPP(t *testing.T) {
	m := newFakeMachine()
	g := NewConservative()
	for i := range m.plat.Clusters {
		name := m.plat.Clusters[i].Name
		m.freqs[name] = m.plat.Clusters[i].MaxFreqMHz()
		m.utils[name] = 1
	}
	if err := g.Act(m); err != nil {
		t.Fatal(err)
	}
	for i := range m.plat.Clusters {
		c := &m.plat.Clusters[i]
		if got := m.freqs[c.Name]; got != c.MaxFreqMHz() {
			t.Errorf("%s: full load at max stepped to %d, want to hold %d", c.Name, got, c.MaxFreqMHz())
		}
	}
}

// Conservative inside the dead zone must not move at all.
func TestConservativeDeadZoneHolds(t *testing.T) {
	m := newFakeMachine()
	g := NewConservative()
	for i := range m.plat.Clusters {
		name := m.plat.Clusters[i].Name
		m.freqs[name] = 1000
		m.utils[name] = 0.5
	}
	before := map[string]int{}
	for k, v := range m.freqs {
		before[k] = v
	}
	if err := g.Act(m); err != nil {
		t.Fatal(err)
	}
	for k, v := range before {
		if m.freqs[k] != v {
			t.Errorf("%s: dead-zone util moved %d → %d", k, v, m.freqs[k])
		}
	}
}

// Ondemand with utilisation 0 must select each cluster's minimum OPP: the
// proportional law scales the target to zero and the OPP snap must land on
// the bottom of the table, not stay pinned at the current frequency.
func TestOndemandZeroUtilDropsToMin(t *testing.T) {
	m := newFakeMachine()
	g := NewOndemand()
	for i := range m.plat.Clusters {
		name := m.plat.Clusters[i].Name
		m.freqs[name] = m.plat.Clusters[i].MaxFreqMHz()
		m.utils[name] = 0
	}
	if err := g.Act(m); err != nil {
		t.Fatal(err)
	}
	for i := range m.plat.Clusters {
		c := &m.plat.Clusters[i]
		if got := m.freqs[c.Name]; got != c.MinFreqMHz() {
			t.Errorf("%s: util 0 selected %d MHz, want min %d", c.Name, got, c.MinFreqMHz())
		}
	}
}

// Ondemand exactly at the up-threshold must jump to maximum (the
// threshold is inclusive, matching the kernel's ≥ comparison).
func TestOndemandAtThresholdJumpsToMax(t *testing.T) {
	m := newFakeMachine()
	g := NewOndemand()
	for i := range m.plat.Clusters {
		name := m.plat.Clusters[i].Name
		m.freqs[name] = m.plat.Clusters[i].MinFreqMHz()
		m.utils[name] = g.UpThreshold
	}
	if err := g.Act(m); err != nil {
		t.Fatal(err)
	}
	for i := range m.plat.Clusters {
		c := &m.plat.Clusters[i]
		if got := m.freqs[c.Name]; got != c.MaxFreqMHz() {
			t.Errorf("%s: util at threshold selected %d MHz, want max %d", c.Name, got, c.MaxFreqMHz())
		}
	}
}

func TestConservativeValidation(t *testing.T) {
	g := &Conservative{UpThreshold: 0.2, DownThreshold: 0.8}
	cfg := baseConfig(g)
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(e); err == nil {
		t.Error("inverted thresholds should be rejected")
	}
}
