// Package powermeter simulates the Odroid Smart Power 2 used in the TEEM
// paper: a board-level meter that samples voltage/current/power at 1 Hz
// (the device default) with finite display resolution, and accumulates
// energy the way the device's kWh counter does — from the sampled values,
// not the continuous waveform.
package powermeter

import (
	"errors"
	"math"
	"slices"
)

// Meter is a sampling power meter.
type Meter struct {
	// PeriodS is the sampling period in seconds (1.0 for the SP2).
	PeriodS float64
	// ResolutionW quantises each power sample (the SP2 displays two
	// decimals, i.e. 0.01 W). Zero disables quantisation.
	ResolutionW float64

	samples []float64
	nextAt  float64
	lastT   float64
	started bool
}

// New returns a meter with the Smart Power 2 defaults: 1 Hz, 0.01 W.
func New() *Meter { return &Meter{PeriodS: 1.0, ResolutionW: 0.01} }

// Reserve pre-sizes the sample buffer for about n further samples, so a
// caller that knows its run length (MaxTimeS / PeriodS) can keep the
// observe path allocation-free.
func (m *Meter) Reserve(n int) {
	if n > 0 {
		m.samples = slices.Grow(m.samples, n)
	}
}

// Reset clears accumulated samples.
func (m *Meter) Reset() {
	m.samples = nil
	m.nextAt = 0
	m.lastT = 0
	m.started = false
}

// Observe feeds the continuous power waveform: callers report the
// instantaneous board power at monotonically non-decreasing times. The
// meter latches a sample whenever a sampling instant passes.
func (m *Meter) Observe(tS, powerW float64) error {
	if m.PeriodS <= 0 {
		return errors.New("powermeter: sampling period must be positive")
	}
	if m.started && tS < m.lastT {
		return errors.New("powermeter: time went backwards")
	}
	if !m.started {
		m.started = true
		m.nextAt = 0 // sample at t=0 like the device's first report
	}
	for m.nextAt <= tS {
		// Sample-and-hold of the most recent value at the sampling
		// instant.
		p := powerW
		m.samples = append(m.samples, m.quantize(p))
		m.nextAt += m.PeriodS
	}
	m.lastT = tS
	return nil
}

// NextSampleAtS returns the time of the next sampling instant: the
// earliest tS at which Observe would latch a sample (0 before the first
// observation — the device samples at t=0). Simulation loops that skip
// ahead use it to land a real evaluation on every sampling instant, so a
// jumped run feeds the meter the same waveform values a per-tick run
// would.
func (m *Meter) NextSampleAtS() float64 {
	if !m.started {
		return 0
	}
	return m.nextAt
}

func (m *Meter) quantize(p float64) float64 {
	if m.ResolutionW <= 0 {
		return p
	}
	return math.Round(p/m.ResolutionW) * m.ResolutionW
}

// Samples returns the recorded power samples in watts.
func (m *Meter) Samples() []float64 { return append([]float64(nil), m.samples...) }

// EnergyJ returns the accumulated energy in joules, computed as the sum of
// samples times the period — exactly how a sampling meter integrates.
func (m *Meter) EnergyJ() float64 {
	e := 0.0
	for _, p := range m.samples {
		e += p * m.PeriodS
	}
	return e
}

// EnergyKWh returns the energy in kilowatt-hours as displayed by the SP2.
func (m *Meter) EnergyKWh() float64 { return m.EnergyJ() / 3.6e6 }

// AvgPowerW returns the mean of the samples.
func (m *Meter) AvgPowerW() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range m.samples {
		s += p
	}
	return s / float64(len(m.samples))
}
