package powermeter

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantPowerEnergy(t *testing.T) {
	m := New()
	for i := 0; i <= 1000; i++ {
		if err := m.Observe(float64(i)*0.01, 5.0); err != nil {
			t.Fatal(err)
		}
	}
	// Samples at t=0..10 inclusive → 11 samples of 5 W × 1 s.
	if n := len(m.Samples()); n != 11 {
		t.Errorf("got %d samples, want 11", n)
	}
	if got := m.EnergyJ(); math.Abs(got-55) > 1e-9 {
		t.Errorf("EnergyJ = %g, want 55", got)
	}
	if got := m.AvgPowerW(); math.Abs(got-5) > 1e-9 {
		t.Errorf("AvgPowerW = %g, want 5", got)
	}
	if got := m.EnergyKWh(); math.Abs(got-55.0/3.6e6) > 1e-15 {
		t.Errorf("EnergyKWh = %g", got)
	}
}

func TestQuantization(t *testing.T) {
	m := New()
	if err := m.Observe(0, 5.123456); err != nil {
		t.Fatal(err)
	}
	s := m.Samples()
	if len(s) != 1 || math.Abs(s[0]-5.12) > 1e-12 {
		t.Errorf("sample = %v, want [5.12]", s)
	}
	raw := &Meter{PeriodS: 1}
	if err := raw.Observe(0, 5.123456); err != nil {
		t.Fatal(err)
	}
	if raw.Samples()[0] != 5.123456 {
		t.Error("zero resolution should not quantise")
	}
}

func TestObserveValidation(t *testing.T) {
	bad := &Meter{PeriodS: 0}
	if err := bad.Observe(0, 1); err == nil {
		t.Error("zero period should error")
	}
	m := New()
	if err := m.Observe(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(4, 1); err == nil {
		t.Error("time going backwards should error")
	}
}

func TestReset(t *testing.T) {
	m := New()
	if err := m.Observe(3, 7); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if len(m.Samples()) != 0 || m.EnergyJ() != 0 || m.AvgPowerW() != 0 {
		t.Error("Reset should clear state")
	}
	// Observable again from t=0 after reset.
	if err := m.Observe(0, 2); err != nil {
		t.Fatal(err)
	}
	if len(m.Samples()) != 1 {
		t.Error("meter unusable after Reset")
	}
}

func TestSparseObservationsCatchUp(t *testing.T) {
	m := &Meter{PeriodS: 1}
	// A single late observation at t=3.5 latches samples for t=0,1,2,3.
	if err := m.Observe(3.5, 4); err != nil {
		t.Fatal(err)
	}
	if n := len(m.Samples()); n != 4 {
		t.Errorf("got %d samples, want 4", n)
	}
}

// Property: energy equals period × sum of samples, and the sample count
// grows like floor(t/period)+1.
func TestMeterInvariantsProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		m := &Meter{PeriodS: 1}
		tm := 0.0
		for _, s := range steps {
			tm += float64(s%40) / 10
			if err := m.Observe(tm, 3.0); err != nil {
				return false
			}
		}
		want := int(math.Floor(tm)) + 1
		if len(steps) == 0 {
			want = 0
		}
		if len(m.Samples()) != want {
			return false
		}
		return math.Abs(m.EnergyJ()-3.0*float64(want)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
