# Targets mirror .github/workflows/ci.yml one-to-one so local runs and CI
# are the same invocations. `make ci` is the full gate.

GO ?= go

.PHONY: build vet fmt test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass through every benchmark — a smoke run that keeps the perf
# trajectory compiling and executable, not a measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

ci: build vet fmt test race bench
