# Targets mirror .github/workflows/ci.yml one-to-one so local runs and CI
# are the same invocations. `make ci` is the full gate.

GO ?= go

.PHONY: build vet lint vulncheck fmt test race bench bench-json scenario-gate integrator-gate platform-gate serve-smoke soak-gate obs-gate ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain lint gate (docs/static-analysis.md): the four teemvet analyzers
# — determinism, hotpath, guards, apicontract — over every production
# package. The tool is this module's own cmd/teemvet, pinned via the
# go.mod `tool` directive, so the gate needs no external dependency and
# always runs the in-tree analyzer version.
lint:
	$(GO) tool teemvet ./...

# Known-vulnerability scan. Non-gating: govulncheck is not vendored, so
# the target is a no-op where the binary is absent, and CI runs it with
# continue-on-error — advisories inform, they do not block.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (non-gating)"; \
	fi

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass through every benchmark — a smoke run that keeps the perf
# trajectory compiling and executable, not a measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Measured snapshot of the core benchmarks (sim tick/run, Fig. 5
# serial/parallel, scenario engine, thermal stepping, power evaluation) as
# BENCH_<date>.json — ns/op, B/op and allocs/op per benchmark. CI uploads
# it as a non-gating artifact so the perf trajectory is tracked across PRs.
BENCH_DATE := $(shell date -u +%Y-%m-%d)
BENCH_CORE := 'BenchmarkSimRun|BenchmarkInstrumentedTick|BenchmarkEngineSecond|BenchmarkFig5Serial|BenchmarkFig5Parallel|BenchmarkScenarioRun|BenchmarkScenarioPreempt|BenchmarkScenarioGrid|BenchmarkScenarioGridPlatforms|BenchmarkScenarioReplaySparse|BenchmarkStep$$|BenchmarkStepperStep|BenchmarkEvaluateInto|BenchmarkServiceSubmit|BenchmarkServiceStream|BenchmarkServiceSoak|BenchmarkJournalReplay|BenchmarkPromExposition'
bench-json:
	$(GO) test -run='^$$' -bench=$(BENCH_CORE) -benchmem ./internal/sim ./internal/scenario ./internal/thermal ./internal/power ./internal/service . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json

# Curated scenario-corpus regression gate: every preset (hand-authored
# and trace-replayed, preemption and departures included) under the
# ondemand baseline and the TEEM controller. teemscenario exits non-zero
# on any assertion violation or cell error, failing the gate.
scenario-gate:
	$(GO) run ./cmd/teemscenario -govs ondemand,teem

# Integrator-agreement gate (docs/integrators.md): the superstep
# agreement suites must hold uncached, and the preset corpus must keep
# its assertions under both -integrator modes — euler here, exact above
# in scenario-gate (where supersteps are live by default).
integrator-gate:
	$(GO) test -count=1 -run 'TestSuperstep' ./internal/thermal ./internal/sim ./internal/scenario
	$(GO) run ./cmd/teemscenario -govs ondemand,teem -integrator euler

# Platform-catalog gate (docs/platforms.md): the catalog validation
# suite (JSON round-trips, physics checks, constructor equivalence) must
# pass uncached, and every builtin platform must keep the whole preset
# corpus's assertions under both integrators — the hardware axis of the
# regression matrix.
platform-gate:
	$(GO) test -count=1 ./internal/platform
	$(GO) run ./cmd/teemscenario -platforms all -govs ondemand,teem
	$(GO) run ./cmd/teemscenario -platforms all -govs ondemand,teem -integrator euler

# Serving-path smoke gate: boot teemd on a random port, hit /healthz,
# submit a preset scenario, stream its NDJSON telemetry, verify the
# result is byte-identical to the teemscenario CLI, cancel a long run,
# drain on SIGTERM — plus the teemd load generator against a live
# daemon. Runs the process-level tests in cmd/teemd under the race
# detector (the test harness itself exercises concurrent clients).
serve-smoke:
	$(GO) test -race ./cmd/teemd -run 'TestServeSmoke|TestLoadSubcommand' -count=1 -v

# Durability and SLO soak gate (docs/operations.md): SIGKILL a daemon
# mid-load and require the restart to re-run every acknowledged job from
# the write-ahead journal to byte-identical results with no duplicated
# completions, then hold the soak SLOs against a daemon running with
# fault injection (worker panics, dropped journal appends) and
# per-tenant quotas.
soak-gate:
	$(GO) test ./cmd/teemd -run 'TestSoakGate|TestLoadSoak' -count=1 -v

# Observability gate (docs/observability.md): boot teemd with the pprof
# listener on, run a job, and verify the whole observability surface —
# /metrics JSON unchanged, Prometheus text exposition format-valid under
# content negotiation, lifecycle spans with the job's trace id on /trace
# and the telemetry stream, and pprof answering on its own port only.
# The instrumented-tick alloc proof rides along: the engine flight
# recorder must cost zero allocations even with wall clocks enabled.
obs-gate:
	$(GO) test ./cmd/teemd -run TestObsGate -count=1 -v
	$(GO) test ./internal/sim -run 'TestInstrumentedTickZeroAllocs|TestRunStatsConsistent' -count=1
	$(GO) test ./internal/service -run 'TestMetricsPromExposition|TestTrace' -count=1

ci: build vet lint fmt test race bench scenario-gate integrator-gate platform-gate serve-smoke soak-gate obs-gate vulncheck
