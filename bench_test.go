// Benchmarks that regenerate every table and figure of the TEEM paper's
// evaluation (one benchmark per artefact), plus end-to-end pipeline
// benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark performs the complete experiment per iteration —
// simulation, baselines and rendering — so -benchtime=1x gives a full
// regeneration pass.
package teem_test

import (
	"sync"
	"testing"

	"teem"
)

// env is shared across benchmarks: experiment results are cached inside,
// so individual benchmarks measure their own experiment, not repeated
// profiling of prerequisites.
var (
	envOnce sync.Once
	env     *teem.Experiments
)

func sharedEnv(b *testing.B) *teem.Experiments {
	b.Helper()
	envOnce.Do(func() {
		e, err := teem.NewExperiments()
		if err != nil {
			b.Fatal(err)
		}
		env = e
	})
	return env
}

var fig5Mapping = teem.Mapping{Big: 4, Little: 2, UseGPU: true}

// BenchmarkFig1Motivation regenerates Fig. 1: ondemand+TMU vs TEEM on
// COVARIANCE (2L+3B, partition 1024/2048), traces included.
func BenchmarkFig1Motivation(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if r.TEEM.ExecTimeS >= r.Ondemand.ExecTimeS {
			b.Fatalf("shape violated: TEEM %.1fs vs ondemand %.1fs", r.TEEM.ExecTimeS, r.Ondemand.ExecTimeS)
		}
		_ = r.Render()
	}
}

// BenchmarkFig3ScatterMatrix regenerates the Fig. 3 profiling dataset and
// its matrix scatterplot.
func BenchmarkFig3ScatterMatrix(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		m, err := e.ProfileApp("COVARIANCE")
		if err != nil {
			b.Fatal(err)
		}
		if s := m.Fig3(); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTableIRegression regenerates Table I (full model, 4 predictors
// on 12 residual DF).
func BenchmarkTableIRegression(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		m, err := e.ProfileApp("COVARIANCE")
		if err != nil {
			b.Fatal(err)
		}
		if m.Model.FullModel.DFResidual != 12 {
			b.Fatalf("df = %d, want 12", m.Model.FullModel.DFResidual)
		}
		_ = m.TableI()
	}
}

// BenchmarkTableIIRegression regenerates Table II (log-transformed model,
// 2 predictors on 13 residual DF).
func BenchmarkTableIIRegression(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		m, err := e.ProfileApp("COVARIANCE")
		if err != nil {
			b.Fatal(err)
		}
		if m.Model.Model.DFResidual != 13 {
			b.Fatalf("df = %d, want 13", m.Model.Model.DFResidual)
		}
		_ = m.TableII()
	}
}

// BenchmarkFig4Residuals regenerates the Fig. 4 residuals-vs-fitted plot.
func BenchmarkFig4Residuals(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		m, err := e.ProfileApp("COVARIANCE")
		if err != nil {
			b.Fatal(err)
		}
		if s := m.Fig4(); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig5aEnergy regenerates Fig. 5(a): per-app energy of EEMP, RMP
// and TEEM at 2L+4B.
func BenchmarkFig5aEnergy(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Fig5(fig5Mapping)
		if err != nil {
			b.Fatal(err)
		}
		vsEEMP, _ := r.EnergySavings()
		if vsEEMP <= 0 {
			b.Fatalf("shape violated: TEEM energy saving vs EEMP %.2f%%", 100*vsEEMP)
		}
		_ = r.RenderEnergy()
	}
}

// BenchmarkFig5bThermal regenerates Fig. 5(b): per-app temperature and the
// thermal-variance reductions.
func BenchmarkFig5bThermal(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Fig5(fig5Mapping)
		if err != nil {
			b.Fatal(err)
		}
		vsEEMP, _ := r.VarianceReductions()
		if vsEEMP <= 0 {
			b.Fatalf("shape violated: variance reduction %.2f%%", 100*vsEEMP)
		}
		_ = r.RenderTemperature()
	}
}

// BenchmarkFig5cPerformance regenerates Fig. 5(c): per-app execution time.
func BenchmarkFig5cPerformance(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Fig5(fig5Mapping)
		if err != nil {
			b.Fatal(err)
		}
		vsEEMP, vsRMP := r.PerformanceGains()
		if vsEEMP <= 0 || vsRMP <= 0 {
			b.Fatalf("shape violated: gains %.1f%%/%.1f%%", 100*vsEEMP, 100*vsRMP)
		}
		_ = r.RenderPerformance()
	}
}

// benchFig5Workers regenerates the full Fig. 5 evaluation (eight apps ×
// three approaches, profiling included) from a cold environment with the
// given worker-pool bound. Unlike the cached figure benchmarks above it
// measures the complete uncached evaluation, so the serial/parallel pair
// exposes the worker-pool speedup in the perf trajectory.
func benchFig5Workers(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		e, err := teem.NewExperimentsWith(teem.ExperimentOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		r, err := e.Fig5(fig5Mapping)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 8 {
			b.Fatalf("%d rows, want 8", len(r.Rows))
		}
	}
}

// BenchmarkFig5Serial is the one-worker reference for the speedup.
func BenchmarkFig5Serial(b *testing.B) { benchFig5Workers(b, 1) }

// BenchmarkFig5Parallel runs the same evaluation on one worker per CPU;
// the ratio to BenchmarkFig5Serial is the parallel engine's speedup.
func BenchmarkFig5Parallel(b *testing.B) { benchFig5Workers(b, 0) }

// BenchmarkMemoryFootprint regenerates the §V.D storage comparison
// (128 table entries vs model + ETGPU).
func BenchmarkMemoryFootprint(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		m := e.Memory()
		if m.ByteSaving < 0.9 {
			b.Fatalf("saving %.3f below the abstract's 90%%", m.ByteSaving)
		}
		_ = m.Render()
	}
}

// BenchmarkDesignPointEnumeration walks the full Eq. (2) × 9 design space
// (257 040 points) and materialises the 10 368-point diverse subset.
func BenchmarkDesignPointEnumeration(b *testing.B) {
	sp, err := teem.NewSpace(teem.Exynos5422())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		sp.EnumerateAll(func(teem.DesignPoint) bool {
			n++
			return true
		})
		if n != 257040 {
			b.Fatalf("enumerated %d, want 257040", n)
		}
		if got := len(sp.DiverseSubset()); got != 10368 {
			b.Fatalf("subset %d, want 10368", got)
		}
	}
}

// BenchmarkAblationThreshold sweeps the software threshold (the design
// choice behind the paper's 85 °C).
func BenchmarkAblationThreshold(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		pts, err := e.ThresholdSweep([]float64{80, 85, 90})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkAblationDelta sweeps the δ step (paper: 200 MHz).
func BenchmarkAblationDelta(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.DeltaSweep([]int{100, 200, 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFloor sweeps the frequency floor (paper: 1400 MHz).
func BenchmarkAblationFloor(b *testing.B) {
	e := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.FloorSweep([]int{1000, 1400, 1800}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineProfile measures the complete offline phase for one
// application (17 profiling runs + ETGPU + two regression fits).
func BenchmarkOfflineProfile(b *testing.B) {
	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()
	for i := 0; i < b.N; i++ {
		mgr, err := teem.NewManager(plat, net, teem.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.Profile(teem.Covariance()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlinePipeline measures a complete online execution: decision
// plus the regulated run, on a pre-profiled manager.
func BenchmarkOnlinePipeline(b *testing.B) {
	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()
	mgr, err := teem.NewManager(plat, net, teem.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	app := teem.Covariance()
	model, err := mgr.Profile(app)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := mgr.Run(app, model.ETGPUSec/2, 85)
		if err != nil {
			b.Fatal(err)
		}
		if res.ThrottleEvents != 0 {
			b.Fatal("TEEM tripped the TMU")
		}
	}
}

// BenchmarkTableLookupVsModel is the ablation behind §V.D: evaluating the
// stored regression model versus searching a 128-entry design-point table
// for an online decision.
func BenchmarkTableLookupVsModel(b *testing.B) {
	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()

	b.Run("model", func(b *testing.B) {
		mgr, err := teem.NewManager(plat, net, teem.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		app := teem.Covariance()
		if _, err := mgr.Profile(app); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mgr.Decide(app.Name, 35, 85); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("table", func(b *testing.B) {
		eemp, err := teem.NewEEMP(plat, net, fig5Mapping)
		if err != nil {
			b.Fatal(err)
		}
		app := teem.Covariance()
		if _, err := eemp.BuildTable(app); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eemp.Decide(app, 35); err != nil {
				b.Fatal(err)
			}
		}
	})
}
