// Multiapp: a dynamic multi-application session on one chip — the online
// situation the paper's manager exists for. Three Polybench applications
// arrive over time (GEMM lands while COVARIANCE still runs and queues
// behind it; SYRK arrives back-to-back later), the ambient steps up
// mid-session, and each job's completion is tracked. The same scenario is
// run under ondemand+TMU and under the TEEM controller; the Fig. 5 static
// per-app comparison lives in examples/motivation and `teemreport`.
package main

import (
	"fmt"
	"log"

	"teem"
)

func main() {
	log.SetFlags(0)

	sc, err := teem.NewScenario("session").
		ArriveDefault(0, "COVARIANCE").
		ArriveDefault(5, "GEMM"). // overlapping arrival: queues
		ArriveDefault(90, "SYRK").
		AmbientStep(30, 38). // afternoon heat
		AssertPeakBelow("A15", 97).
		RequireCompletion().
		Build()
	if err != nil {
		log.Fatal(err)
	}

	grid, err := teem.RunScenarioGrid(
		[]*teem.Scenario{sc},
		[]string{"ondemand", "teem"},
		teem.ScenarioConfig{},
		0,
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("three arrivals (t=0, 5, 90 s) with an ambient step to 38 °C at t=30 s:")
	fmt.Println()
	fmt.Print(grid.Render())
	fmt.Println()
	for _, cell := range grid.Cells[0] {
		fmt.Printf("%s job completions:\n", cell.Governor)
		for _, jf := range cell.Sim.JobFinishes {
			fmt.Printf("  %-12s finished at t=%6.1f s\n", jf.App, jf.AtS)
		}
	}
	fmt.Println()

	od := grid.Cell("session", "ondemand")
	tm := grid.Cell("session", "teem")
	fmt.Printf("TEEM vs ondemand over the whole session: energy %+.1f%%, peak %+.1f °C, trips %d vs %d\n",
		100*(tm.Sim.EnergyJ-od.Sim.EnergyJ)/od.Sim.EnergyJ,
		tm.Sim.PeakTempC-od.Sim.PeakTempC,
		tm.Sim.ThrottleEvents, od.Sim.ThrottleEvents)
}
