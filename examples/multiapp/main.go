// Multiapp: a dynamic multi-application session on one chip — the online
// situation the paper's manager exists for. Three Polybench applications
// arrive over time (GEMM lands while COVARIANCE still runs and queues
// behind it; SYRK arrives back-to-back later), a high-priority MVT burst
// preempts the session mid-run and a tenant departs with its job half
// done, the ambient steps up, and each job's completion or cancellation
// is tracked. The same scenario is run under ondemand+TMU and under the
// TEEM controller; the Fig. 5 static per-app comparison lives in
// examples/motivation and `teemreport`.
package main

import (
	"fmt"
	"log"

	"teem"
)

func main() {
	log.SetFlags(0)

	sc, err := teem.NewScenario("session").
		ArriveDefault(0, "COVARIANCE").
		ArriveDefault(5, "GEMM").     // overlapping arrival: queues
		ArrivePriority(20, "MVT", 2). // urgent burst: preempts the live job
		Depart(70, "GEMM").           // tenant leaves mid-job; unfinished work is dropped
		ArriveDefault(90, "SYRK").
		AmbientStep(30, 38). // afternoon heat
		AssertPeakBelow("A15", 97).
		RequireCompletion().
		Build()
	if err != nil {
		log.Fatal(err)
	}

	grid, err := teem.RunScenarioGrid(
		[]*teem.Scenario{sc},
		[]string{"ondemand", "teem"},
		teem.ScenarioConfig{},
		0,
	)
	if err != nil {
		log.Fatal(err)
	}
	// A cell whose run errors out carries the error as its violation
	// with no sim result — fail loudly instead of dereferencing nil.
	for _, cell := range grid.Cells[0] {
		if cell.Sim == nil {
			log.Fatalf("%s under %s failed: %v", cell.Scenario, cell.Governor, cell.Violations)
		}
	}

	fmt.Println("arrivals at t=0, 5, 90 s, a prio-2 MVT burst at t=20 s preempting the")
	fmt.Println("live job, a GEMM departure at t=70 s, and an ambient step to 38 °C:")
	fmt.Println()
	fmt.Print(grid.Render())
	fmt.Println()
	for _, cell := range grid.Cells[0] {
		fmt.Printf("%s job completions:\n", cell.Governor)
		for _, jf := range cell.Sim.JobFinishes {
			fmt.Printf("  %-12s finished at t=%6.1f s\n", jf.App, jf.AtS)
		}
		for _, jc := range cell.Sim.JobCancels {
			fmt.Printf("  %-12s departed at t=%6.1f s with %2.0f%% of its work done\n",
				jc.App, jc.AtS, 100*jc.DoneFrac)
		}
	}
	fmt.Println()

	od := grid.Cell("session", "ondemand")
	tm := grid.Cell("session", "teem")
	fmt.Printf("TEEM vs ondemand over the whole session: energy %+.1f%%, peak %+.1f °C, trips %d vs %d\n",
		100*(tm.Sim.EnergyJ-od.Sim.EnergyJ)/od.Sim.EnergyJ,
		tm.Sim.PeakTempC-od.Sim.PeakTempC,
		tm.Sim.ThrottleEvents, od.Sim.ThrottleEvents)
}
