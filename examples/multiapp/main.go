// Multiapp: the paper's Fig. 5 evaluation — EEMP, RMP and TEEM across the
// eight Polybench applications at mapping 2L+4B, comparing energy,
// temperature behaviour and execution time.
package main

import (
	"fmt"
	"log"

	"teem"
)

func main() {
	log.SetFlags(0)

	env, err := teem.NewExperiments()
	if err != nil {
		log.Fatal(err)
	}
	fig5, err := env.Fig5(teem.Mapping{Big: 4, Little: 2, UseGPU: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(fig5.RenderEnergy())
	fmt.Println(fig5.RenderTemperature())
	fmt.Println(fig5.RenderPerformance())

	eE, eR := fig5.EnergySavings()
	vE, vR := fig5.VarianceReductions()
	pE, pR := fig5.PerformanceGains()
	fmt.Println("summary (TEEM vs EEMP / RMP):")
	fmt.Printf("  energy        %+.1f%% / %+.1f%%   (paper: -28.32%% / -13.97%%)\n", -100*eE, -100*eR)
	fmt.Printf("  variance      %+.1f%% / %+.1f%%   (paper: -76%% / -45%%)\n", -100*vE, -100*vR)
	fmt.Printf("  exec time     %+.1f%% / %+.1f%%   (paper: ~-28%% / ~-24%%)\n", -100*pE, -100*pR)
}
