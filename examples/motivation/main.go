// Motivation: reproduce the paper's Fig. 1 — the Linux ondemand governor
// bouncing off the 95 °C hardware trip versus TEEM holding the chip at the
// 85 °C threshold, on COVARIANCE with an even CPU/GPU split (the paper's
// "partition 1024").
package main

import (
	"fmt"
	"log"

	"teem"
)

func main() {
	log.SetFlags(0)

	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()
	app := teem.Covariance()
	m := teem.Mapping{Big: 3, Little: 2, UseGPU: true} // the paper's 2L+3B
	part := teem.Partition{Num: 4, Den: 8}             // 1024 of 2048

	run := func(name string, gov teem.Governor) *teem.SimResult {
		res, err := teem.RunWarm(teem.SimConfig{
			Platform: plat, Net: net, App: app,
			Map: m, Part: part, Governor: gov,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("\n=== %s ===\n", name)
		fmt.Print(res.Trace.RenderTempAndFreq("A15", "A15", 72, 12))
		fmt.Printf("ET %.1f s | %.0f J | avg %.1f °C | peak %.1f °C | %d trips\n",
			res.ExecTimeS, res.EnergyJ, res.AvgTempC, res.PeakTempC, res.ThrottleEvents)
		return res
	}

	od := run("Fig. 1(a): ondemand + hardware TMU", teem.NewOndemand())
	te := run("Fig. 1(b): TEEM (85 °C threshold, 200 MHz steps, 1400 MHz floor)",
		teem.NewController(teem.DefaultParams()))

	fmt.Printf("\nTEEM vs ondemand: %.1f%% faster, %.1f%% less energy, %.1f °C cooler on average\n",
		100*(od.ExecTimeS-te.ExecTimeS)/od.ExecTimeS,
		100*(od.EnergyJ-te.EnergyJ)/od.EnergyJ,
		od.AvgTempC-te.AvgTempC)
}
