// Quickstart: profile an application offline, then run it under TEEM with
// a performance and temperature requirement.
package main

import (
	"fmt"
	"log"

	"teem"
)

func main() {
	log.SetFlags(0)

	// 1. Describe the hardware: the Odroid-XU4's Exynos 5422 and its
	//    calibrated thermal network ship as presets.
	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()

	// 2. Build the TEEM manager with the paper's parameters
	//    (85 °C threshold, 200 MHz steps, 1400 MHz floor).
	mgr, err := teem.NewManager(plat, net, teem.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Offline phase: profile the application across CPU mappings and
	//    fit the mapping model (Eq. 6). Only 32 bytes survive to runtime.
	app := teem.Covariance()
	model, err := mgr.Profile(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline phase: model stored in %d bytes, ETGPU = %.1f s\n",
		model.StorageBytes(), model.ETGPUSec)

	// 4. Online phase: state the requirement — finish within 35 s while
	//    averaging at most 85 °C — and let TEEM pick mapping, partition
	//    and regulate DVFS.
	const (
		treqS = 35.0
		atC   = 85.0
	)
	res, dec, err := mgr.Run(app, treqS, atC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision: mapping %s, partition %s (WGCPU = %.2f)\n",
		dec.Map, dec.Part, dec.WGCPU)
	fmt.Printf("run:      %.1f s, %.0f J, avg %.1f °C, peak %.1f °C, %d hardware trips\n",
		res.ExecTimeS, res.EnergyJ, res.AvgTempC, res.PeakTempC, res.ThrottleEvents)
	if res.ExecTimeS <= treqS {
		fmt.Println("performance requirement met without thermal throttling")
	} else {
		fmt.Printf("requirement missed by %.1f s\n", res.ExecTimeS-treqS)
	}
}
