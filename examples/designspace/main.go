// Designspace: sweep the paper's 10 368-point diverse design-point subset
// (Eq. 2 restricted as in §III-A.1) for one application with the analytic
// evaluator, extract the energy/performance Pareto front, and show where
// TEEM's online decision lands relative to it.
package main

import (
	"fmt"
	"log"
	"sort"

	"teem"
)

func main() {
	log.SetFlags(0)

	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()
	app := teem.Covariance()

	sp, err := teem.NewSpace(plat)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := teem.NewEvaluator(plat, net)
	if err != nil {
		log.Fatal(err)
	}

	subset := sp.DiverseSubset()
	fmt.Printf("evaluating %d design points for %s...\n", len(subset), app.Name)
	evals := make([]teem.PointEval, 0, len(subset))
	for _, dp := range subset {
		pe, err := ev.Evaluate(app, dp)
		if err != nil {
			continue // infeasible combination
		}
		evals = append(evals, pe)
	}
	fmt.Printf("%d feasible points\n\n", len(evals))

	// Pareto front on (ET, EC): keep points not dominated by any other.
	sort.Slice(evals, func(i, j int) bool {
		if evals[i].ETS != evals[j].ETS {
			return evals[i].ETS < evals[j].ETS
		}
		return evals[i].ECJ < evals[j].ECJ
	})
	var front []teem.PointEval
	bestEC := 1e18
	for _, e := range evals {
		if e.ECJ < bestEC {
			front = append(front, e)
			bestEC = e.ECJ
		}
	}
	fmt.Printf("Pareto front (%d points), fastest to most frugal:\n", len(front))
	step := len(front)/12 + 1
	for i := 0; i < len(front); i += step {
		e := front[i]
		fmt.Printf("  ET %6.1f s  EC %6.0f J  AT %5.1f °C  %s\n", e.ETS, e.ECJ, e.ATC, e.DP)
	}

	// Where does TEEM land? Profile and decide for a mid requirement.
	mgr, err := teem.NewManager(plat, net, teem.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	model, err := mgr.Profile(app)
	if err != nil {
		log.Fatal(err)
	}
	treq := model.ETGPUSec / 2
	res, dec, err := mgr.Run(app, treq, 85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTEEM online decision for TREQ=%.1f s: %s %s\n", treq, dec.Map, dec.Part)
	fmt.Printf("measured: ET %.1f s, EC %.0f J, avg %.1f °C\n", res.ExecTimeS, res.EnergyJ, res.AvgTempC)

	// Distance to the front at TEEM's achieved ET.
	bestAt := 1e18
	for _, e := range front {
		if e.ETS <= res.ExecTimeS && e.ECJ < bestAt {
			bestAt = e.ECJ
		}
	}
	if bestAt < 1e18 {
		gap := 100 * (res.EnergyJ - bestAt) / bestAt
		verdict := fmt.Sprintf("within %.1f%% of", gap)
		if gap < 0 {
			verdict = fmt.Sprintf("%.1f%% below", -gap)
		}
		fmt.Printf("analytic Pareto energy at that ET: %.0f J → TEEM lands %s the front\n", bestAt, verdict)
		fmt.Println("(and unlike the front's hottest points, it also holds the 85 °C threshold)")
	}
}
