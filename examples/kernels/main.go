// Kernels: the library ships real Go ports of the Polybench kernels the
// paper evaluates, partitionable by rows exactly like the paper's OpenCL
// work-item partitioning. This example runs every kernel at several
// CPU/GPU splits, verifies partition invariance (identical checksums) and
// reports wall-clock timings per split.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"teem"
)

func main() {
	log.SetFlags(0)

	const n = 256 // problem size per kernel
	nCPU := runtime.GOMAXPROCS(0)
	fmt.Printf("running Polybench kernels at size %d with %d CPU workers\n\n", n, nCPU)

	splits := []float64{0, 0.5, 1} // GPU-only, even, CPU-only

	for _, app := range teem.Apps() {
		// Reference: single-shot run.
		ref, err := teem.NewKernel(app.Name, n)
		if err != nil {
			log.Fatal(err)
		}
		ref.RunRows(0, ref.Rows())
		want := ref.Checksum()

		fmt.Printf("%-12s", app.Name)
		for _, frac := range splits {
			k, err := teem.NewKernel(app.Name, n)
			if err != nil {
				log.Fatal(err)
			}
			t0 := time.Now()
			if err := teem.RunPartitioned(k, frac, nCPU); err != nil {
				log.Fatal(err)
			}
			el := time.Since(t0)
			ok := "ok"
			if k.Checksum() != want {
				ok = "CHECKSUM MISMATCH"
			}
			fmt.Printf("  cpu=%.0f%%: %6.1fms %s", 100*frac, float64(el.Microseconds())/1000, ok)
		}
		fmt.Println()
	}

	fmt.Println("\nEvery split produces identical checksums: the row partition is free to")
	fmt.Println("move between CPU and GPU, which is precisely the property TEEM's Eq. (9)")
	fmt.Println("work-group partitioning exploits.")
}
