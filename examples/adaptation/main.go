// Adaptation: the "online" in TEEM — the paper's criticism of offline-only
// approaches ([9], [15]) is that they cannot react "when the behavior of
// the cores change". Here the scenario engine ramps the ambient
// temperature mid-run (the device moves into direct sunlight) on a
// pre-heated chip: a fixed offline design point sails into hardware
// throttling while TEEM's controller re-regulates around its threshold.
// The same declarative scenario runs under both policies — no bespoke
// governor wrappers needed.
package main

import (
	"fmt"
	"log"

	"teem"
)

func main() {
	log.SetFlags(0)

	// Pre-heat the chip: the steady regime of back-to-back benchmarking,
	// the thermal situation the paper measures in.
	warm, err := teem.WarmStartTemps(teem.SimConfig{
		Platform: teem.Exynos5422(),
		Net:      teem.Exynos5422Thermal(),
		App:      teem.Covariance(),
		Map:      teem.Mapping{Big: 4, Little: 2, UseGPU: true},
		Part:     teem.Partition{Num: 4, Den: 8},
	})
	if err != nil {
		log.Fatal(err)
	}

	sc, err := teem.NewScenario("sunlight").
		ArriveDefault(0, "COVARIANCE").
		AmbientRamp(12, 5, 43). // 28 → 43 °C over 5 s starting at t=12
		Horizon(30).
		RequireCompletion().
		Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ambient ramps 28 °C → 43 °C at t = 12 s (device moves into the sun):")
	fmt.Println()
	grid, err := teem.RunScenarioGrid(
		[]*teem.Scenario{sc},
		[]string{"performance", "teem"},
		teem.ScenarioConfig{InitialTempsC: warm},
		0,
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range grid.Cells[0] {
		if row.Sim == nil {
			// A failed cell carries its error as a violation.
			log.Fatalf("%s under %s failed: %v", row.Scenario, row.Governor, row.Violations)
		}
		name := "fixed design point"
		if row.Governor == "teem" {
			name = "TEEM controller"
		}
		fmt.Printf("%-28s ET %5.1f s | %4.0f J | avg %.1f °C | peak %.1f °C | trips %d\n",
			name, row.Sim.ExecTimeS, row.Sim.EnergyJ, row.Sim.AvgTempC,
			row.Sim.PeakTempC, row.Sim.ThrottleEvents)
	}
	fmt.Println()
	fmt.Println("The fixed design point has no reaction of its own — it rides into the")
	fmt.Println("95 °C firmware trip and thrashes between 2000 and 900 MHz. TEEM notices")
	fmt.Println("the rising sensor and re-regulates around 85 °C by stepping the A15 down,")
	fmt.Println("keeping the thermal profile flat through the environmental change.")
}
