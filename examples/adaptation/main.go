// Adaptation: the "online" in TEEM — the paper's criticism of offline-only
// approaches ([9], [15]) is that they cannot react "when the behavior of
// the cores change". Here the ambient temperature jumps mid-run (the
// device moves into direct sunlight): a fixed offline design point sails
// into hardware throttling while TEEM's controller re-regulates around its
// threshold.
package main

import (
	"fmt"
	"log"

	"teem"
)

// ambientStep wraps a Governor and raises the engine ambient at a fixed
// simulation time, then keeps delegating to the wrapped policy.
type ambientStep struct {
	inner   teem.Governor
	engine  *teem.Engine
	atS     float64
	toC     float64
	applied bool
}

func (a *ambientStep) Name() string     { return a.inner.Name() + "+ambient-step" }
func (a *ambientStep) PeriodS() float64 { return a.inner.PeriodS() }
func (a *ambientStep) Start(m teem.Machine) error {
	a.applied = false
	return a.inner.Start(m)
}
func (a *ambientStep) Act(m teem.Machine) error {
	if !a.applied && m.TimeS() >= a.atS {
		a.engine.SetAmbientC(a.toC)
		a.applied = true
	}
	return a.inner.Act(m)
}

func run(name string, inner teem.Governor) {
	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()
	cfg := teem.SimConfig{
		Platform: plat,
		Net:      net,
		App:      teem.Covariance(),
		Map:      teem.Mapping{Big: 4, Little: 2, UseGPU: true},
		Part:     teem.Partition{Num: 4, Den: 8},
	}
	warm, err := teem.WarmStartTemps(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.InitialTempsC = warm

	// The engine must exist before the governor wrapper can reference
	// it, so wire them in two steps.
	step := &ambientStep{inner: inner, atS: 12, toC: 43}
	cfg.Governor = step
	e, err := teem.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	step.engine = e

	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s ET %5.1f s | %4.0f J | avg %.1f °C | peak %.1f °C | trips %d\n",
		name, res.ExecTimeS, res.EnergyJ, res.AvgTempC, res.PeakTempC, res.ThrottleEvents)
}

func main() {
	log.SetFlags(0)
	fmt.Println("ambient steps 28 °C → 43 °C at t = 12 s (device moves into the sun):")
	fmt.Println()
	run("fixed design point", teem.NewPerformance())
	run("TEEM controller", teem.NewController(teem.DefaultParams()))
	fmt.Println()
	fmt.Println("The fixed design point has no reaction of its own — it rides into the")
	fmt.Println("95 °C firmware trip and thrashes between 2000 and 900 MHz. TEEM notices")
	fmt.Println("the rising sensor and re-regulates around 85 °C by stepping the A15 down,")
	fmt.Println("keeping the thermal profile flat through the environmental change.")
}
