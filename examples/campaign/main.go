// Campaign: back-to-back execution of several applications with the
// thermal state carried between them — the situation a real device lives
// in. Later jobs inherit a hot chip: an unmanaged campaign degrades and
// throttles progressively, while a TEEM-regulated campaign stays inside
// its thermal band from the first job to the last.
//
// The final section contrasts this with an *independent* campaign — the
// same jobs as thermally non-carrying experiments scheduled across a
// worker pool (-workers) — the batch mode a design-space study uses.
package main

import (
	"flag"
	"fmt"
	"log"

	"teem"
)

func main() {
	log.SetFlags(0)
	workers := flag.Int("workers", 0, "worker pool for the independent campaign (0 = one per CPU)")
	flag.Parse()

	apps := []string{"CV", "SR", "2M", "CR"}
	build := func(gov func() teem.Governor) []teem.Job {
		var jobs []teem.Job
		for _, code := range apps {
			app, err := teem.AppByShort(code)
			if err != nil {
				log.Fatal(err)
			}
			jobs = append(jobs, teem.Job{
				App:      app,
				Map:      teem.Mapping{Big: 4, Little: 2, UseGPU: true},
				Part:     teem.Partition{Num: 4, Den: 8},
				Governor: gov(),
			})
		}
		return jobs
	}

	run := func(name string, gov func() teem.Governor) *teem.CampaignResult {
		res, err := teem.RunCampaign(teem.CampaignConfig{
			Platform: teem.Exynos5422(),
			Net:      teem.Exynos5422Thermal(),
			GapS:     2, // two seconds of app-launch idle between jobs
		}, build(gov))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", name)
		trips := 0
		for i, jr := range res.Jobs {
			fmt.Printf("  job %d (%-2s): %5.1f s  %4.0f J  avg %.1f °C  peak %.1f °C  trips %d\n",
				i+1, apps[i], jr.ExecTimeS, jr.EnergyJ, jr.AvgTempC, jr.PeakTempC, jr.ThrottleEvents)
			trips += jr.ThrottleEvents
		}
		fmt.Printf("  total: %.1f s, %.0f J, campaign peak %.1f °C, %d hardware trips\n",
			res.TotalTimeS, res.TotalEnergyJ, res.PeakTempC, trips)
		return res
	}

	unmanaged := run("unmanaged (performance governor + TMU)", teem.NewPerformance)
	managed := run("TEEM-regulated", func() teem.Governor {
		return teem.NewController(teem.DefaultParams())
	})

	fmt.Printf("\nTEEM across the campaign: %.1f%% less energy, %.1f °C lower peak\n",
		100*(unmanaged.TotalEnergyJ-managed.TotalEnergyJ)/unmanaged.TotalEnergyJ,
		unmanaged.PeakTempC-managed.PeakTempC)

	// The same jobs as an independent batch: every job starts cold (no
	// carried thermal state), so they are scheduled across the worker
	// pool. Results keep job order — the output does not depend on the
	// worker count.
	batch, err := teem.RunCampaign(teem.CampaignConfig{
		Platform:    teem.Exynos5422(),
		Net:         teem.Exynos5422Thermal(),
		Independent: true,
		Workers:     *workers,
	}, build(func() teem.Governor {
		return teem.NewController(teem.DefaultParams())
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindependent batch (TEEM, parallel scheduler):\n")
	for i, jr := range batch.Jobs {
		fmt.Printf("  job %d (%-2s): %5.1f s  %4.0f J  avg %.1f °C  peak %.1f °C\n",
			i+1, apps[i], jr.ExecTimeS, jr.EnergyJ, jr.AvgTempC, jr.PeakTempC)
	}
	fmt.Printf("  total: %.1f s, %.0f J — cold starts, no carry-over: every job sees the same chip\n",
		batch.TotalTimeS, batch.TotalEnergyJ)
}
