// Customplatform: TEEM is not tied to the Exynos 5422 — describe any
// CPU-GPU MPSoC (clusters, OPP tables, thermal RC network) and the same
// manager, governors and baselines run unchanged. This example models a
// fanless automotive-style SoC with a hotter ambient and wider big
// cluster, then lets TEEM regulate it.
package main

import (
	"fmt"
	"log"

	"teem"
)

// buildPlatform describes a hypothetical "AutoSoC-8": 8 big cores up to
// 2400 MHz, 4 efficiency cores, an 8-shader GPU, passive cooling, 45 °C
// cabin ambient.
func buildPlatform() *teem.Platform {
	ramp := func(lo, hi, step int, vLo, vHi float64) []teem.OPP {
		var opps []teem.OPP
		n := (hi - lo) / step
		for i := 0; i <= n; i++ {
			f := lo + i*step
			v := vLo + (vHi-vLo)*float64(i)/float64(n)
			opps = append(opps, teem.OPP{FreqMHz: f, VoltV: v})
		}
		return opps
	}
	return &teem.Platform{
		Name: "AutoSoC-8",
		Clusters: []teem.Cluster{
			{
				Name: "P-core", Kind: teem.BigCPU, NumCores: 8,
				OPPs:       ramp(400, 2400, 200, 0.85, 1.30),
				CdynCoreNF: 0.42, LeakCoeff: 0.12, LeakTempCoeff: 0.012,
			},
			{
				Name: "E-core", Kind: teem.LittleCPU, NumCores: 4,
				OPPs:       ramp(400, 1600, 200, 0.80, 1.10),
				CdynCoreNF: 0.09, LeakCoeff: 0.03, LeakTempCoeff: 0.010,
			},
			{
				Name: "iGPU", Kind: teem.GPUKind, NumCores: 8,
				OPPs:       ramp(200, 800, 100, 0.85, 1.10),
				CdynCoreNF: 0.50, LeakCoeff: 0.05, LeakTempCoeff: 0.010,
			},
		},
		BoardBaselineW:  3.5,
		DRAMPowerPerGBs: 0.25,
		AmbientC:        45, // cabin heat
		TripC:           105,
		TripReleaseC:    98,
		TripCapMHz:      1000,
	}
}

// buildThermal wires a passive (no-fan) RC network: higher resistances to
// ambient than the Odroid's, so thermal management matters even more.
func buildThermal() *teem.ThermalNetwork {
	return &teem.ThermalNetwork{
		Nodes: []teem.ThermalNode{
			{Name: "P-core", HeatCapJ: 2.0},
			{Name: "E-core", HeatCapJ: 0.7},
			{Name: "iGPU", HeatCapJ: 1.8},
			{Name: "pkg", HeatCapJ: 4.0},
		},
		Links: []teem.ThermalLink{
			{A: 0, B: 3, ResCW: 2.5},
			{A: 1, B: 3, ResCW: 5.0},
			{A: 2, B: 3, ResCW: 2.5},
			{A: 3, B: teem.Ambient, ResCW: 6.0}, // passive heatsink
			{A: 0, B: teem.Ambient, ResCW: 50},
			{A: 2, B: teem.Ambient, ResCW: 60},
		},
	}
}

func main() {
	log.SetFlags(0)

	plat := buildPlatform()
	net := buildThermal()
	if err := plat.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	// A hotter platform wants a higher threshold and floor; everything
	// else is the same TEEM.
	params := teem.DefaultParams()
	params.ThresholdC = 95
	params.FloorMHz = 1600

	mgr, err := teem.NewManager(plat, net, params)
	if err != nil {
		log.Fatal(err)
	}
	app := teem.Covariance()
	model, err := mgr.Profile(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AutoSoC-8 profiled: ETGPU = %.1f s, model R² = %.3f\n",
		model.ETGPUSec, model.Model.RSquared)

	res, dec, err := mgr.Run(app, model.ETGPUSec*0.5, params.ThresholdC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision: %s at partition %s\n", dec.Map, dec.Part)
	fmt.Printf("run: %.1f s, %.0f J, avg %.1f °C, peak %.1f °C (trip at %.0f °C), %d trips\n",
		res.ExecTimeS, res.EnergyJ, res.AvgTempC, res.PeakTempC, plat.TripC, res.ThrottleEvents)

	// Contrast with an unmanaged full-speed run on the same design point.
	raw, err := teem.RunWarm(teem.SimConfig{
		Platform: plat, Net: net, App: app,
		Map: dec.Map, Part: dec.Part,
		Governor: teem.NewPerformance(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("performance governor on the same design point: %.1f s, %.0f J, peak %.1f °C, %d trips\n",
		raw.ExecTimeS, raw.EnergyJ, raw.PeakTempC, raw.ThrottleEvents)
}
