package teem_test

import (
	"context"
	"fmt"

	"teem"
)

// ExampleNewManager shows the complete offline → online pipeline on the
// default platform.
func ExampleNewManager() {
	mgr, err := teem.NewManager(teem.Exynos5422(), teem.Exynos5422Thermal(), teem.DefaultParams())
	if err != nil {
		panic(err)
	}
	app := teem.Covariance()
	model, err := mgr.Profile(app)
	if err != nil {
		panic(err)
	}
	fmt.Printf("runtime store: %d bytes\n", model.StorageBytes())

	res, dec, err := mgr.Run(app, model.ETGPUSec/2, 85)
	if err != nil {
		panic(err)
	}
	fmt.Printf("partition: %s, hardware trips: %d, completed: %v\n",
		dec.Part, res.ThrottleEvents, res.Completed)
	// Output:
	// runtime store: 32 bytes
	// partition: 4/8, hardware trips: 0, completed: true
}

// ExampleNewScenario drives the engine through a dynamic situation: two
// overlapping app arrivals, an ambient step and a mid-run governor
// switch, with assertions checked along the way.
func ExampleNewScenario() {
	sc, err := teem.NewScenario("demo").
		ArriveDefault(0, "COVARIANCE").
		ArriveDefault(5, "GEMM"). // lands while COVARIANCE runs: queues
		AmbientStep(20, 38).
		SwitchGovernor(40, "conservative").
		AssertPeakBelow("A15", 99).
		RequireCompletion().
		Build()
	if err != nil {
		panic(err)
	}
	res, err := teem.RunScenario(sc, teem.ScenarioConfig{Governor: "teem"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("jobs finished: %d, assertions passed: %v\n",
		len(res.Sim.JobFinishes), res.Passed())
	// Output:
	// jobs finished: 2, assertions passed: true
}

// ExampleNewService runs the teemd engine in-process: submit a preset
// scenario as a managed job, wait for it, and read the summary. The
// rendered result text is byte-identical to the equivalent teemscenario
// CLI run, and identical requests are served from the request cache.
func ExampleNewService() {
	svc, err := teem.NewService(teem.ServiceOptions{Workers: 1})
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	job, cached, err := svc.Submit(&teem.JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if err != nil {
		panic(err)
	}
	// Stream follows the job live (per-sample NDJSON telemetry) and
	// returns when it finishes — here we just drain it as a wait.
	if err := job.Stream(context.Background(), func([]byte) error { return nil }); err != nil {
		panic(err)
	}
	_, sum, err := job.Result()
	if err != nil {
		panic(err)
	}
	fmt.Println(job.Snapshot().Status, cached, sum.Cells, sum.Violations)

	// The identical request again: answered from the single-flight
	// request cache, no second simulation.
	again, cached, err := svc.Submit(&teem.JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if err != nil {
		panic(err)
	}
	fmt.Println(again.ID == job.ID, cached)
	// Output:
	// done false 1 0
	// true true
}

// ExampleNewSpace reproduces the paper's design-space counts (Eqs. 1–2).
func ExampleNewSpace() {
	sp, err := teem.NewSpace(teem.Exynos5422())
	if err != nil {
		panic(err)
	}
	fmt.Println(sp.CountCPUMappings())  // Eq. (1)
	fmt.Println(sp.MaxDesignPoints())   // Eq. (2)
	fmt.Println(sp.TotalDesignPoints()) // × 9 partition grains
	// Output:
	// 24
	// 28560
	// 257040
}

// ExampleNearestPartition snaps Eq. (9) fractions to the paper's grains.
func ExampleNearestPartition() {
	// TREQ = half of ETGPU → WGCPU = 0.5 → the paper's partition 1024.
	p := teem.NearestPartition(0.5)
	fmt.Println(p, p.CPUItems(2048))
	// Output:
	// 4/8 1024
}

// ExampleRunPartitioned validates partition invariance of a real kernel.
func ExampleRunPartitioned() {
	ref, _ := teem.NewKernel("GEMM", 24)
	ref.RunRows(0, ref.Rows())

	k, _ := teem.NewKernel("GEMM", 24)
	if err := teem.RunPartitioned(k, 0.375, 4); err != nil {
		panic(err)
	}
	fmt.Println(k.Checksum() == ref.Checksum())
	// Output:
	// true
}
