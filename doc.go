// Package teem is a Go implementation of TEEM — online thermal- and
// energy-efficiency management for CPU-GPU MPSoCs (Isuwa, Dey, Singh,
// McDonald-Maier, DATE 2019) — together with every substrate the paper's
// evaluation depends on: an Exynos 5422 platform model with cluster-wise
// DVFS, a lumped-RC thermal simulator with TMU-style hardware protection,
// a CMOS power model, analytic and real Polybench workloads, the Linux
// ondemand governor, the EEMP and RMP comparison baselines, an R-style
// linear-regression engine, and a harness that regenerates each table and
// figure of the paper.
//
// # Quick start
//
//	plat := teem.Exynos5422()
//	net := teem.Exynos5422Thermal()
//	mgr, err := teem.NewManager(plat, net, teem.DefaultParams())
//	if err != nil { ... }
//	app := teem.Covariance()
//	model, err := mgr.Profile(app)             // offline phase
//	res, dec, err := mgr.Run(app, 35.0, 85.0)  // TREQ = 35 s, AT = 85 °C
//	fmt.Println(res.ExecTimeS, res.EnergyJ, res.AvgTempC, dec.Part)
//
// The offline phase profiles the application across CPU mappings, fits
// the paper's log-linear mapping model (Eq. 6) and stores it with the
// measured ETGPU — two items instead of a 128-entry design-point table
// (§V.D). The online phase selects the design point for a (TREQ, AT)
// requirement, partitions work-items by Eq. (9), launches at maximum
// frequency and regulates the A15 cluster around the 85 °C threshold in
// 200 MHz steps with a 1400 MHz floor (Fig. 2).
//
// # Reproducing the paper
//
//	env, err := teem.NewExperiments()
//	fig1, err := env.Fig1()        // motivation traces + summary
//	m, err := env.ProfileApp("COVARIANCE")
//	fmt.Println(m.TableI(), m.TableII(), m.Fig3(), m.Fig4())
//	fig5, err := env.Fig5(teem.Mapping{Big: 4, Little: 2, UseGPU: true})
//	fmt.Println(fig5.RenderEnergy())
//
// # The platform catalog
//
// Hardware is a first-class axis: a PlatformBundle packages a SoC
// description, the thermal network it is calibrated against and catalog
// metadata (deployment class, accelerator slots) under one name,
// validated as a unit. Six builtin platforms ship embedded in the
// binary — resolve them with GetPlatform/ResolvePlatform, list them
// with PlatformNames, sweep them with RunScenarioPlatformGrid, and
// check a custom bundle with VerifyPlatform. Custom platforms are plain
// data: describe one in a bundle JSON file (or wire a Platform and a
// Network directly) and every governor, baseline and the TEEM manager
// run unchanged (see examples/customplatform and docs/platforms.md).
//
// # Architecture
//
// The repository is layered; each layer drives only the one below it,
// and every surface (this facade, the CLIs, the teemd daemon) is a thin
// shell over the same engines, so batch and served results are
// byte-identical:
//
//	core      offline profiling (Manager.Profile fits the Eq. 6 mapping
//	          model) and the online Controller, a sim.Governor that
//	          regulates frequency around the ambient threshold
//	sim       the co-simulation engine: a 10 ms tick loop over workload
//	          progress, power and temperature, with DVFS governors, TMU
//	          hardware protection, a preemptive job queue, ScheduleAt
//	          hooks — and an event-horizon superstep scheduler that jumps
//	          provably steady intervals in one propagator application
//	          (see docs/integrators.md for the integrator contract)
//	soc, thermal, power, workload
//	          the platform substrate: cluster/OPP descriptions, the
//	          lumped-RC network with exact and Euler integrators plus
//	          affine superstep jump maps, the CMOS power model, analytic
//	          and Polybench workload models
//	scenario  declarative event timelines (arrivals, departures, ambient
//	          ramps, governor switches) compiled onto the sim hooks, with
//	          presets, trace replay and grid fan-out
//	service   simulations as managed jobs: bounded worker pool, request
//	          cache, cancellation, NDJSON telemetry — served by cmd/teemd
//	obs       the observability layer the others report through: the
//	          engine's zero-allocation flight recorder (sim.Result.Stats),
//	          job trace ids and lifecycle spans, and the Prometheus text
//	          exposition writer + validator behind teemd's /metrics
//
// Package teem re-exports the stable surface of these internal packages
// as type aliases and constructor wrappers; go doc on the individual
// internal packages documents each layer in depth.
//
// The invariants the layers rely on — determinism in the simulation
// core, zero-allocation //teem:hotpath functions, //teem:guards mutex
// discipline, errors.Is for sentinels — are statically enforced by the
// in-tree analysis suite (internal/analysis, run as `make lint` via
// cmd/teemvet); docs/static-analysis.md catalogues the analyzers and
// their waiver annotations.
package teem
