// Tests of the public facade: everything a downstream user touches goes
// through package teem, so these tests double as API contract checks.
package teem_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"teem"
)

func TestPublicPipeline(t *testing.T) {
	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()
	mgr, err := teem.NewManager(plat, net, teem.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	app := teem.Covariance()
	model, err := mgr.Profile(app)
	if err != nil {
		t.Fatal(err)
	}
	if model.StorageBytes() != 32 {
		t.Errorf("StorageBytes = %d, want 32", model.StorageBytes())
	}
	res, dec, err := mgr.Run(app, model.ETGPUSec/2, 85)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.ThrottleEvents != 0 {
		t.Errorf("public pipeline run: completed=%v trips=%d", res.Completed, res.ThrottleEvents)
	}
	if dec.Part.Num != 4 {
		t.Errorf("half-ETGPU TREQ should give the even split, got %s", dec.Part)
	}
}

func TestPublicGovernorsRun(t *testing.T) {
	cfg := teem.SimConfig{
		Platform: teem.Exynos5422(),
		Net:      teem.Exynos5422Thermal(),
		App:      teem.Covariance(),
		Map:      teem.Mapping{Big: 2, Little: 2, UseGPU: true},
		Part:     teem.Partition{Num: 2, Den: 8},
	}
	for _, g := range []teem.Governor{
		teem.NewOndemand(),
		teem.NewPerformance(),
		teem.NewConservative(),
		teem.NewUserspace(1500, 1000, 480),
		teem.NewController(teem.DefaultParams()),
	} {
		cfg.Governor = g
		res, err := teem.RunWarm(cfg)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Completed {
			t.Errorf("%s: run did not complete", g.Name())
		}
	}
}

func TestPublicBaselines(t *testing.T) {
	plat := teem.Exynos5422()
	net := teem.Exynos5422Thermal()
	m := teem.Mapping{Big: 4, Little: 2, UseGPU: true}
	eemp, err := teem.NewEEMP(plat, net, m)
	if err != nil {
		t.Fatal(err)
	}
	if eemp.StoredItems() != 128 {
		t.Errorf("EEMP items = %d", eemp.StoredItems())
	}
	rmp, err := teem.NewRMP(plat, net, m)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := rmp.Decide(teem.Covariance())
	if err != nil {
		t.Fatal(err)
	}
	if dp.Part.Num == 0 {
		t.Error("RMP should split COVARIANCE")
	}
}

func TestPublicKernels(t *testing.T) {
	k, err := teem.NewKernel("GEMM", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := teem.RunPartitioned(k, 0.5, 2); err != nil {
		t.Fatal(err)
	}
	ref, _ := teem.NewKernel("GEMM", 16)
	ref.RunRows(0, ref.Rows())
	if k.Checksum() != ref.Checksum() {
		t.Error("partitioned checksum differs")
	}
}

func TestPublicDesignSpace(t *testing.T) {
	sp, err := teem.NewSpace(teem.Exynos5422())
	if err != nil {
		t.Fatal(err)
	}
	if sp.MaxDesignPoints() != 28560 {
		t.Errorf("Eq. 2 = %d", sp.MaxDesignPoints())
	}
	if len(teem.Partitions()) != 9 {
		t.Error("partition grains != 9")
	}
	if p := teem.NearestPartition(0.5); p.Num != 4 {
		t.Errorf("NearestPartition(0.5) = %s", p)
	}
}

func TestPublicRegression(t *testing.T) {
	d := &teem.Dataset{
		ResponseName:   "y",
		Response:       []float64{2.1, 3.9, 6.2, 7.8, 10.1},
		PredictorNames: []string{"x"},
		Predictors:     [][]float64{{1, 2, 3, 4, 5}},
	}
	m, err := teem.FitRegression(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coefficients[1].Estimate-1.99) > 1e-9 {
		t.Errorf("slope = %g", m.Coefficients[1].Estimate)
	}
	if !strings.Contains(m.Summary(), "R-squared") {
		t.Error("summary incomplete")
	}
}

func TestPublicSecondPlatform(t *testing.T) {
	p := teem.Exynos5410()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The design-space formulas apply to the 5410 too.
	sp, err := teem.NewSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. (2): (4·11 + 4·11 + 4·11·4·11) × 5 = (44+44+1936)×5 = 10120.
	if got := sp.MaxDesignPoints(); got != 10120 {
		t.Errorf("5410 design points = %d, want 10120", got)
	}
}

func TestPublicCampaign(t *testing.T) {
	res, err := teem.RunCampaign(teem.CampaignConfig{
		Platform: teem.Exynos5422(),
		Net:      teem.Exynos5422Thermal(),
	}, []teem.Job{
		{
			App:      teem.Covariance(),
			Map:      teem.Mapping{Big: 3, Little: 2, UseGPU: true},
			Part:     teem.Partition{Num: 4, Den: 8},
			Governor: teem.NewController(teem.DefaultParams()),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 || !res.Jobs[0].Completed {
		t.Error("campaign job did not complete")
	}
}

func TestPublicTraceCSV(t *testing.T) {
	cfg := teem.SimConfig{
		Platform: teem.Exynos5422(),
		Net:      teem.Exynos5422Thermal(),
		App:      teem.Covariance(),
		Map:      teem.Mapping{Big: 2, Little: 2, UseGPU: true},
		Part:     teem.Partition{Num: 2, Den: 8},
		MaxTimeS: 3,
	}
	e, err := teem.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "temp_A15_C") {
		t.Error("CSV header missing")
	}
}

func TestPublicStoreRoundTrip(t *testing.T) {
	mgr, err := teem.NewManager(teem.Exynos5422(), teem.Exynos5422Thermal(), teem.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Profile(teem.Covariance()); err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Export()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := teem.LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mgr2, err := teem.NewManager(teem.Exynos5422(), teem.Exynos5422Thermal(), teem.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr2.Import(loaded); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr2.Decide("COVARIANCE", 35, 85); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPlatformJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := teem.Exynos5422().Save(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := teem.LoadPlatform(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Exynos5422" {
		t.Errorf("loaded %q", p.Name)
	}
	var nb bytes.Buffer
	if err := teem.Exynos5422Thermal().Save(&nb); err != nil {
		t.Fatal(err)
	}
	n, err := teem.LoadThermalNetwork(&nb)
	if err != nil {
		t.Fatal(err)
	}
	if n.NodeIndex("pkg") < 0 {
		t.Error("loaded network missing pkg node")
	}
}
