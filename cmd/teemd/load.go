package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"teem/internal/buildinfo"
	"teem/internal/obs"
	"teem/internal/scenario"
	"teem/internal/service"
)

// runLoad is the teemd load generator: N concurrent clients submit the
// same preset request (or, with -unique, N distinct inline scenarios),
// poll their jobs to completion, fetch the rendered results and verify
// every one is byte-identical to the output the teemscenario CLI code
// path produces for the same work — the race-cleanliness and determinism
// demonstration for a live daemon. Exit status is non-zero on any
// mismatch or failed request.
func runLoad(args []string) {
	fs := flag.NewFlagSet("teemd load", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "base URL of the teemd under load")
		clients = fs.Int("clients", 64, "concurrent clients")
		reqs    = fs.Int("requests", 1, "requests per client")
		preset  = fs.String("preset", "sunlight", "preset scenario every client submits")
		govs    = fs.String("govs", "ondemand", "comma-separated governors")
		plat    = fs.String("platform", "", "catalog platform every client submits against (empty = the service default)")
		unique  = fs.Bool("unique", false, "give every client a distinct inline scenario (defeats the request cache)")
		soak    = fs.Bool("soak", false, "soak mode: submit continuously for -duration and assert the SLOs")
		dur     = fs.Duration("duration", 10*time.Second, "soak: how long to keep submitting")
		tenants = fs.Int("tenants", 4, "soak: spread clients across this many tenants")
		sloP99  = fs.Duration("slo-p99", 30*time.Second, "soak: p99 submit→done latency bound")
		stats   = fs.Bool("stats", false, "print the engine flight-recorder aggregate of the local verification runs")
		version = fs.Bool("version", false, "print version and exit")
	)
	_ = fs.Parse(args)
	if *version {
		fmt.Println(buildinfo.String("teemd"))
		return
	}
	if *soak {
		runSoak(*addr, *clients, *tenants, *dur, *sloP99)
		return
	}

	var governors []string
	for _, g := range strings.Split(*govs, ",") {
		if g = strings.TrimSpace(g); g != "" {
			governors = append(governors, g)
		}
	}

	// The expected bytes come from the same code path the teemscenario
	// CLI renders: a local serial grid run of the identical work. With
	// -stats those runs also feed the flight-recorder aggregate (the
	// daemon side keeps its own recorders; these are the load tool's).
	var statsMu sync.Mutex
	var statsAgg obs.RunStats
	expect := func(sc *scenario.Scenario) string {
		rc := scenario.Config{PlatformName: *plat}
		if *stats {
			rc.Clock = obs.Nanotime
			rc.OnCell = func(r *scenario.Result) {
				if r.Sim == nil {
					return
				}
				statsMu.Lock()
				statsAgg.Add(r.Sim.Stats)
				statsMu.Unlock()
			}
		}
		grid, err := scenario.RunGrid([]*scenario.Scenario{sc}, governors, rc, 1)
		if err != nil {
			log.Fatalf("computing expected output: %v", err)
		}
		return grid.Render()
	}
	presetSc := scenario.PresetByName(*preset)
	if presetSc == nil {
		log.Fatalf("unknown preset %q", *preset)
	}
	expected := expect(presetSc)

	type outcome struct {
		latency time.Duration
		cached  bool
		err     error
	}
	results := make(chan outcome, *clients**reqs)
	for c := 0; c < *clients; c++ {
		go func(c int) {
			client := &http.Client{Timeout: 5 * time.Minute}
			for r := 0; r < *reqs; r++ {
				results <- oneRequest(client, *addr, c, *preset, *plat, governors, *unique, expect, expected)
			}
		}(c)
	}

	// SIGINT prints the summary for what has completed so far instead of
	// dying mid-run with nothing — a long campaign is still reportable.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)

	var latencies []time.Duration
	ok, cachedN, failed := 0, 0, 0
	interrupted := false
	start := time.Now()
	total := *clients * *reqs
collect:
	for i := 0; i < total; i++ {
		var o outcome
		select {
		case o = <-results:
		case <-sigc:
			interrupted = true
			log.Printf("interrupted after %d of %d requests; printing the partial summary", i, total)
			break collect
		}
		if o.err != nil {
			failed++
			log.Printf("request failed: %v", o.err)
			continue
		}
		ok++
		if o.cached {
			cachedN++
		}
		latencies = append(latencies, o.latency)
	}
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		return latencies[int(p*float64(len(latencies)-1))]
	}
	fmt.Printf("teemd load: %d clients × %d requests against %s\n", *clients, *reqs, *addr)
	fmt.Printf("  ok %d, cached %d, failed %d, wall %s\n", ok, cachedN, failed, wall.Round(time.Millisecond))
	fmt.Printf("  latency p50 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Millisecond), pct(0.99).Round(time.Millisecond), pct(1.0).Round(time.Millisecond))
	if *stats {
		statsMu.Lock()
		fmt.Println("  flight recorder (local verification runs):")
		fmt.Print(indentLines(statsAgg.String()))
		statsMu.Unlock()
	}
	if interrupted {
		fmt.Printf("  interrupted: %d of %d requests completed\n", ok+failed, total)
		os.Exit(130)
	}
	if failed > 0 {
		log.Fatalf("%d request(s) failed or returned non-CLI-identical bytes", failed)
	}
	fmt.Println("  every result byte-identical to the CLI render ✔")
}

// indentLines prefixes every line with four spaces for the stats block.
func indentLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// oneRequest submits, polls to terminal, fetches the result and compares
// it against the CLI-equivalent bytes.
func oneRequest(client *http.Client, addr string, c int, preset, platform string, governors []string,
	unique bool, expect func(*scenario.Scenario) string, expected string) (o struct {
	latency time.Duration
	cached  bool
	err     error
}) {
	req := service.JobRequest{Preset: preset, Governors: governors, Platform: platform}
	want := expected
	if unique {
		sc, err := scenario.New(fmt.Sprintf("load-%d", c)).
			ArriveDefault(0, "MVT").
			Horizon(5).
			Build()
		if err != nil {
			o.err = err
			return o
		}
		var b bytes.Buffer
		if err := sc.Save(&b); err != nil {
			o.err = err
			return o
		}
		req = service.JobRequest{Scenario: b.Bytes(), Governors: governors, Platform: platform}
		want = expect(sc)
	}

	raw, err := json.Marshal(req)
	if err != nil {
		o.err = err
		return o
	}
	start := time.Now()
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		o.err = err
		return o
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		o.err = err
		return o
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		o.err = fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, body)
		return o
	}
	var js service.JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		o.err = err
		return o
	}
	o.cached = js.Cached

	for !js.Terminal() {
		time.Sleep(5 * time.Millisecond)
		sresp, err := client.Get(addr + "/v1/jobs/" + js.ID)
		if err != nil {
			o.err = err
			return o
		}
		body, err := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if err != nil {
			o.err = err
			return o
		}
		if err := json.Unmarshal(body, &js); err != nil {
			o.err = err
			return o
		}
	}
	if js.Status != service.StatusDone {
		o.err = fmt.Errorf("job %s ended %s: %s", js.ID, js.Status, js.Error)
		return o
	}
	rresp, err := client.Get(addr + "/v1/jobs/" + js.ID + "/result")
	if err != nil {
		o.err = err
		return o
	}
	text, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		o.err = err
		return o
	}
	if string(text) != want {
		o.err = fmt.Errorf("job %s result differs from the CLI render (%d vs %d bytes)", js.ID, len(text), len(want))
		return o
	}
	o.latency = time.Since(start)
	return o
}
