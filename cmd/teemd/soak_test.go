package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"teem/internal/scenario"
	"teem/internal/service"
)

// soakScenario builds one small distinct scenario plus the byte-exact
// render the daemon must eventually produce for it.
func soakScenario(t *testing.T, name string, horizon float64) (json.RawMessage, string) {
	t.Helper()
	sc, err := scenario.New(name).ArriveDefault(0, "MVT").Horizon(horizon).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	grid, err := scenario.RunGrid([]*scenario.Scenario{sc}, []string{"ondemand"}, scenario.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), grid.Render()
}

// TestSoakGate is the crash-recovery acceptance gate: SIGKILL a daemon
// that has acknowledged jobs it has not finished, restart it on the same
// journal, and require that every acknowledged job re-runs under its
// original id to a byte-identical result, with no duplicate completion
// records in the journal.
func TestSoakGate(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.ndjson")

	// Phase 1: a deliberately slow daemon (every grid cell stalls 1s)
	// accepts four jobs and is killed before any can finish. The 202
	// acknowledgements mean the submissions are fsynced to the journal.
	d1 := startDaemon(t, "-journal", journal, "-workers", "1", "-fault-slow-cell", "1s")
	type pending struct {
		id    string
		trace string
		want  string
	}
	var jobs []pending
	for i := 0; i < 4; i++ {
		scJSON, want := soakScenario(t, fmt.Sprintf("crash-%d", i), float64(2+i))
		code, body := d1.post(t, "/v1/jobs", service.JobRequest{
			Scenario:  scJSON,
			Governors: []string{"ondemand"},
			Tenant:    "crash-test",
		})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, code, body)
		}
		var js service.JobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
		if js.TraceID == "" {
			t.Fatalf("submit %d acknowledged with no trace id", i)
		}
		jobs = append(jobs, pending{id: js.ID, trace: js.TraceID, want: want})
	}
	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no journal close
		t.Fatal(err)
	}
	_ = d1.cmd.Wait()

	// Phase 2: a fresh daemon on the same journal (no faults) must
	// recover all four jobs and run them to completion.
	d2 := startDaemon(t, "-journal", journal)
	code, body := d2.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d: %s", code, body)
	}
	var m struct {
		Recoveries int64 `json:"recoveries"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Recoveries != int64(len(jobs)) {
		t.Errorf("recoveries = %d, want %d", m.Recoveries, len(jobs))
	}
	for _, p := range jobs {
		js := d2.waitTerminal(t, p.id, 60*time.Second)
		if js.Status != service.StatusDone {
			t.Fatalf("recovered job %s ended %s: %s", p.id, js.Status, js.Error)
		}
		if js.TraceID != p.trace {
			t.Errorf("job %s recovered under trace %q, want the pre-crash %q", p.id, js.TraceID, p.trace)
		}
		code, got := d2.get(t, "/v1/jobs/"+p.id+"/result")
		if code != http.StatusOK {
			t.Fatalf("result %s = %d: %s", p.id, code, got)
		}
		if string(got) != p.want {
			t.Errorf("job %s: recovered result differs from the local render (%d vs %d bytes)",
				p.id, len(got), len(p.want))
		}
	}
	code, body = d2.get(t, "/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"status": "ok"`)) {
		t.Errorf("healthz after recovery = %d: %s", code, body)
	}

	// One trace per job across both process epochs: the restarted
	// daemon's /trace must open each pre-crash trace id with a recover
	// span.
	code, body = d2.get(t, "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace = %d: %s", code, body)
	}
	recovered := make(map[string]bool)
	tsc := bufio.NewScanner(bytes.NewReader(body))
	tsc.Buffer(make([]byte, 1<<20), 1<<20)
	for tsc.Scan() {
		var sp struct {
			Trace string `json:"trace"`
			Phase string `json:"phase"`
		}
		if err := json.Unmarshal(tsc.Bytes(), &sp); err != nil {
			t.Fatalf("bad span line %q: %v", tsc.Text(), err)
		}
		if sp.Phase == "recover" {
			recovered[sp.Trace] = true
		}
	}
	for _, p := range jobs {
		if !recovered[p.trace] {
			t.Errorf("no recover span for job %s trace %s on the restarted daemon", p.id, p.trace)
		}
	}

	// Graceful shutdown flushes the journal so it can be audited.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("restarted teemd exited with %v", err)
	}

	// Phase 3: the journal must hold exactly one finish record per job —
	// recovery must not have duplicated completions.
	f, err := os.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	finishes := make(map[string]int)
	statuses := make(map[string]string)
	journalTraces := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec struct {
			Op     string `json:"op"`
			ID     string `json:"id"`
			Status string `json:"status"`
			Trace  string `json:"trace"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("corrupt journal line %q: %v", sc.Text(), err)
		}
		if rec.Op == "finish" {
			finishes[rec.ID]++
			statuses[rec.ID] = rec.Status
		}
		if rec.Op == "submit" {
			journalTraces[rec.ID] = rec.Trace
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, p := range jobs {
		if finishes[p.id] != 1 {
			t.Errorf("journal has %d finish records for %s, want exactly 1", finishes[p.id], p.id)
		}
		if statuses[p.id] != string(service.StatusDone) {
			t.Errorf("journal finish for %s is %q, want done", p.id, statuses[p.id])
		}
		if journalTraces[p.id] != p.trace {
			t.Errorf("journal submit for %s carries trace %q, want %q", p.id, journalTraces[p.id], p.trace)
		}
	}
	for id, n := range finishes {
		if n > 1 {
			t.Errorf("journal has %d finish records for %s", n, id)
		}
	}
}

// TestLoadSoak drives the promoted soak benchmark end to end: a daemon
// running with fault injection (periodic worker panics, dropped journal
// appends) and per-tenant quotas must hold the soak SLOs — every
// accepted job settles done (retries absorb the panics) or explicitly
// shed, results stay byte-identical, and healthz stays ok.
func TestLoadSoak(t *testing.T) {
	d := startDaemon(t,
		"-journal", filepath.Join(t.TempDir(), "journal.ndjson"),
		"-workers", "2", "-queue", "16",
		"-fault-panic-every", "7",
		"-fault-journal-err-every", "3",
		"-retry-max", "8", "-retry-base", "5ms",
		"-quota-rate", "50", "-quota-burst", "10",
	)
	soak := exec.Command(filepath.Join(binDir, "teemd"), "load",
		"-addr", d.base, "-soak",
		"-clients", "6", "-tenants", "3",
		"-duration", "2s", "-slo-p99", "30s")
	out, err := soak.CombinedOutput()
	if err != nil {
		t.Fatalf("teemd load -soak: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("soak SLOs held")) {
		t.Errorf("soak output lacks the SLO verdict:\n%s", out)
	}
}
