// Command teemd is the TEEM simulation daemon: a long-running HTTP/JSON
// service that hosts simulations as managed jobs. Clients submit
// scenarios (inline JSON, preset names, or arrival-trace replays),
// scenario × governor grids and Fig. 5-style experiments; poll job
// status; stream live NDJSON telemetry (temperature / frequency / power
// samples as the engine ticks); and cancel in-flight work, which aborts
// within one simulation tick. Identical requests are collapsed by a
// request-hash single-flight cache, operational metrics are exported via
// /metrics and expvar (/debug/vars), and SIGTERM drains gracefully:
// submissions are rejected, in-flight jobs get -drain-timeout to finish,
// stragglers are cancelled.
//
// Usage:
//
//	teemd [serve] -addr :8080 -workers 4 -queue 64
//	teemd load -addr http://127.0.0.1:8080 -clients 64
//
// The API, with curl:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"preset":"sunlight","governors":["ondemand","teem"]}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -sN localhost:8080/v1/jobs/j1/stream        # NDJSON telemetry
//	curl -s localhost:8080/v1/jobs/j1/result         # byte-identical to teemscenario
//	curl -s -X POST localhost:8080/v1/jobs/j1/cancel
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"teem/internal/buildinfo"
	"teem/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("teemd: ")

	args := os.Args[1:]
	if len(args) > 0 && args[0] == "load" {
		runLoad(args[1:])
		return
	}
	if len(args) > 0 && args[0] == "serve" {
		args = args[1:]
	}
	runServe(args)
}

func runServe(args []string) {
	fs := flag.NewFlagSet("teemd serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		workers = fs.Int("workers", 0, "concurrently executing jobs (0 = one per CPU)")
		queue   = fs.Int("queue", 64, "queued-job admission bound (a full queue sheds lower-priority work or answers 429)")
		keep    = fs.Int("keep", 1024, "finished jobs retained for status/result queries")
		drain   = fs.Duration("drain-timeout", 15*time.Second, "SIGTERM grace: time in-flight jobs get before cancellation")

		journal        = fs.String("journal", "", "write-ahead job journal path; a restart re-runs its uncompleted jobs (empty = volatile)")
		journalCompact = fs.Int64("journal-compact", 0, "journal size that triggers compaction in bytes (0 = 1 MiB)")

		quotaRate   = fs.Float64("quota-rate", 0, "per-tenant sustained submissions/s (0 = unlimited)")
		quotaBurst  = fs.Int("quota-burst", 0, "per-tenant submission burst (0 = ceil(rate))")
		quotaActive = fs.Int("quota-active", 0, "per-tenant cap on queued+running jobs (0 = unlimited)")

		retryMax  = fs.Int("retry-max", 0, "total execution attempts for transiently failing jobs (0 = 3, 1 = no retry)")
		retryBase = fs.Duration("retry-base", 0, "retry backoff base, doubling per attempt with jitter (0 = 50ms)")

		faultPanic      = fs.Int("fault-panic-every", 0, "fault injection: panic every Nth job execution (0 = off)")
		faultJournalErr = fs.Int("fault-journal-err-every", 0, "fault injection: drop every Nth journal append (0 = off)")
		faultSlowCell   = fs.Duration("fault-slow-cell", 0, "fault injection: delay every completed grid cell by this much (0 = off)")

		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:0; empty = off)")
		version   = fs.Bool("version", false, "print version and exit")
	)
	_ = fs.Parse(args)
	if *version {
		fmt.Println(buildinfo.String("teemd"))
		return
	}

	opts := service.Options{
		Workers:             *workers,
		QueueDepth:          *queue,
		KeepJobs:            *keep,
		JournalPath:         *journal,
		JournalCompactBytes: *journalCompact,
		Retry:               service.RetryPolicy{MaxAttempts: *retryMax, BaseDelay: *retryBase},
	}
	if *quotaRate > 0 || *quotaActive > 0 {
		opts.Quotas = &service.QuotaConfig{Default: service.TenantQuota{
			RatePerSec: *quotaRate,
			Burst:      *quotaBurst,
			MaxActive:  *quotaActive,
		}}
	}
	if *faultPanic > 0 || *faultJournalErr > 0 || *faultSlowCell > 0 {
		log.Printf("fault injection active: panic-every=%d journal-err-every=%d slow-cell=%s",
			*faultPanic, *faultJournalErr, *faultSlowCell)
		opts.Faults = &service.FaultConfig{
			PanicEvery:      *faultPanic,
			JournalErrEvery: *faultJournalErr,
			SlowCell:        *faultSlowCell,
		}
	}
	svc, err := service.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	if *journal != "" {
		m := svc.Metrics()
		log.Printf("journal %s: %d job(s) recovered", *journal, m.Recoveries())
	}
	svc.Metrics().PublishExpvar()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s", buildinfo.String("teemd"))
	log.Printf("listening on %s", ln.Addr())

	if *pprofAddr != "" {
		// Profiling rides a separate listener so the production API port
		// never exposes pprof, and an operator can bind it to loopback
		// only.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("pprof listening on %s", pln.Addr())
		go func() { _ = (&http.Server{Handler: pmux}).Serve(pln) }()
	}

	srv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutdown signal; draining jobs (timeout %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		log.Printf("drain deadline hit; in-flight jobs cancelled")
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
	}
	log.Printf("bye: %s", svc.Metrics())
}
