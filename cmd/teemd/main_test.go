package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"teem/internal/scenario"
	"teem/internal/service"
)

// binDir holds the teemd and teemscenario binaries TestMain builds once
// for the whole process-level suite.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "teemd-smoke-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build := exec.Command("go", "build", "-o", dir, "teem/cmd/teemd", "teem/cmd/teemscenario")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "building smoke binaries: %v\n", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	binDir = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemon is one running teemd under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
	logc chan string
}

// startDaemon boots teemd on an ephemeral port and waits for its
// listening line.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(filepath.Join(binDir, "teemd"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, logc: make(chan string, 256)}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "teemd: listening on "); ok {
				select {
				case addrc <- rest:
				default:
				}
			}
			select {
			case d.logc <- line:
			default:
			}
		}
		close(d.logc)
	}()
	select {
	case addr := <-addrc:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("teemd never reported its listening address")
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return d
}

func (d *daemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func (d *daemon) post(t *testing.T, path string, v any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func (d *daemon) waitTerminal(t *testing.T, id string, timeout time.Duration) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		_, body := d.get(t, "/v1/jobs/"+id)
		var js service.JobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatalf("bad status body %s: %v", body, err)
		}
		if js.Terminal() {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, js.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeSmoke is the make serve-smoke gate: boot teemd on a random
// port, hit /healthz, submit a preset scenario, stream it to completion,
// verify the result is byte-identical to the teemscenario CLI, check the
// request cache, cancel a long run, and shut down cleanly on SIGTERM.
func TestServeSmoke(t *testing.T) {
	d := startDaemon(t)

	code, body := d.get(t, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, body)
	}

	// Submit a preset scenario and stream it to completion.
	code, body = d.post(t, "/v1/jobs", service.JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var js service.JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(d.base + "/v1/jobs/" + js.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	samples, sawDone := 0, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON %q: %v", sc.Text(), err)
		}
		switch ev["type"] {
		case "sample":
			samples++
		case "done":
			sawDone = true
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if samples == 0 || !sawDone {
		t.Fatalf("stream had %d samples, done=%v", samples, sawDone)
	}

	// The rendered result must be byte-identical to the CLI's stdout
	// for the same work.
	code, got := d.get(t, "/v1/jobs/"+js.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, got)
	}
	cli := exec.Command(filepath.Join(binDir, "teemscenario"), "-preset", "sunlight", "-govs", "ondemand")
	var cliOut bytes.Buffer
	cli.Stdout = &cliOut
	cli.Stderr = os.Stderr
	if err := cli.Run(); err != nil {
		t.Fatalf("teemscenario: %v", err)
	}
	if !bytes.Equal(got, cliOut.Bytes()) {
		t.Errorf("daemon result (%d bytes) != teemscenario stdout (%d bytes)\ndaemon:\n%s\ncli:\n%s",
			len(got), cliOut.Len(), got, cliOut.Bytes())
	}

	// A repeated identical request is a cache hit.
	code, body = d.post(t, "/v1/jobs", service.JobRequest{Preset: "sunlight", Governors: []string{"ondemand"}})
	if code != http.StatusOK {
		t.Fatalf("cached submit = %d: %s", code, body)
	}
	var js2 service.JobStatus
	if err := json.Unmarshal(body, &js2); err != nil {
		t.Fatal(err)
	}
	if !js2.Cached || js2.ID != js.ID {
		t.Errorf("repeat = %+v, want cached %s", js2, js.ID)
	}

	// Cancel a long-running job; it must land cancelled promptly.
	long, err := scenario.New("smoke-long").ArriveDefault(0, "COVARIANCE").Horizon(100000).Build()
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := long.Save(&raw); err != nil {
		t.Fatal(err)
	}
	code, body = d.post(t, "/v1/jobs", service.JobRequest{Scenario: raw.Bytes()})
	if code != http.StatusAccepted {
		t.Fatalf("long submit = %d: %s", code, body)
	}
	var lj service.JobStatus
	if err := json.Unmarshal(body, &lj); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if code, body = d.post(t, "/v1/jobs/"+lj.ID+"/cancel", nil); code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", code, body)
	}
	fin := d.waitTerminal(t, lj.ID, 10*time.Second)
	if fin.Status != service.StatusCancelled {
		t.Errorf("long job ended %s, want cancelled", fin.Status)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v", d)
	}

	// Metrics are exported via expvar at /debug/vars.
	code, body = d.get(t, "/debug/vars")
	if code != http.StatusOK || !bytes.Contains(body, []byte("teemd.jobs_done")) {
		t.Errorf("/debug/vars = %d, teemd.* present=%v", code, bytes.Contains(body, []byte("teemd.jobs_done")))
	}

	// SIGTERM drains and exits 0.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("teemd exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatal("teemd did not exit on SIGTERM")
	}
}

// TestLoadSubcommand points the teemd load generator at a live daemon:
// 16 concurrent clients, every result byte-identical to the CLI render.
func TestLoadSubcommand(t *testing.T) {
	d := startDaemon(t)
	load := exec.Command(filepath.Join(binDir, "teemd"), "load",
		"-addr", d.base, "-clients", "16", "-requests", "1")
	out, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("teemd load: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("byte-identical")) {
		t.Errorf("load output lacks the verification line:\n%s", out)
	}
}
