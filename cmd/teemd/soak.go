package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"teem/internal/scenario"
	"teem/internal/service"
)

// runSoak is the SLO soak driver behind `make soak-gate`: N clients
// spread across T tenants submit distinct small scenarios continuously
// for the soak duration against a daemon that is typically running with
// fault injection (worker panics, journal write errors, slow cells).
// The gate asserts the robustness contract, not raw throughput:
//
//   - no transport or protocol errors — admission pressure must answer
//     429 with a Retry-After hint, which clients honour and retry;
//   - every accepted job reaches a terminal state, and that state is
//     done (injected panics are transient: retry must absorb them) or a
//     shed with an explicit "shed:" cause;
//   - every completed result is byte-identical to the local CLI-path
//     render of the same scenario;
//   - every completed job's telemetry stream replays to a terminal
//     "done" event — no dropped streams;
//   - p99 submit→done latency stays under -slo-p99;
//   - the daemon still answers healthz "ok" afterwards.
//
// Exit status is non-zero on any violation.
func runSoak(addr string, clients, tenants int, dur, sloP99 time.Duration) {
	if tenants < 1 {
		tenants = 1
	}
	var (
		mu       sync.Mutex
		jobs     []*soakJob
		errs     []string
		rejected int
		cacheHit int
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		errs = append(errs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Minute}
			rng := rand.New(rand.NewSource(int64(c)))
			tenant := fmt.Sprintf("tenant-%d", c%tenants)
			for seq := 0; time.Now().Before(deadline); seq++ {
				sc, err := scenario.New(fmt.Sprintf("soak-%d-%d", c, seq)).
					ArriveDefault(0, "MVT").
					Horizon(float64(2 + seq%3)).
					Build()
				if err != nil {
					fail("building scenario: %v", err)
					return
				}
				var scJSON bytes.Buffer
				if err := sc.Save(&scJSON); err != nil {
					fail("encoding scenario: %v", err)
					return
				}
				grid, err := scenario.RunGrid([]*scenario.Scenario{sc}, []string{"ondemand"}, scenario.Config{}, 1)
				if err != nil {
					fail("computing expected output: %v", err)
					return
				}
				req, _ := json.Marshal(service.JobRequest{
					Scenario:  scJSON.Bytes(),
					Governors: []string{"ondemand"},
					Tenant:    tenant,
					Priority:  rng.Intn(3),
				})

				start := time.Now()
				js, retryAfter, err := soakSubmit(client, addr, req)
				switch {
				case err != nil:
					fail("submit: %v", err)
					return
				case retryAfter > 0:
					// Admission control said come back later: honour it.
					mu.Lock()
					rejected++
					mu.Unlock()
					if retryAfter > time.Second {
						retryAfter = time.Second
					}
					time.Sleep(retryAfter)
					continue
				case js.Cached:
					mu.Lock()
					cacheHit++
					mu.Unlock()
					continue
				}
				a := &soakJob{id: js.ID, want: grid.Render(), start: start}
				mu.Lock()
				jobs = append(jobs, a)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// Settlement: every accepted job must reach a terminal state.
	client := &http.Client{Timeout: 2 * time.Minute}
	settle := time.Now().Add(sloP99 + time.Minute)
	for _, a := range jobs {
		js, err := soakAwait(client, addr, a.id, settle)
		if err != nil {
			fail("job %s never settled: %v", a.id, err)
			continue
		}
		a.status, a.errMsg = js.Status, js.Error
		if js.FinishedAt != nil {
			a.latency = js.FinishedAt.Sub(a.start)
		}
		switch {
		case js.Status == service.StatusDone:
			if err := soakVerify(client, addr, a); err != nil {
				fail("job %s: %v", a.id, err)
			}
		case js.Status == service.StatusFailed && strings.HasPrefix(js.Error, "shed:"):
			// Load shedding is an SLO-visible but legitimate outcome.
		default:
			fail("job %s ended %s: %s", a.id, js.Status, js.Error)
		}
	}

	var latencies []time.Duration
	doneN, shedN := 0, 0
	for _, a := range jobs {
		switch {
		case a.status == service.StatusDone:
			doneN++
			latencies = append(latencies, a.latency)
		case strings.HasPrefix(a.errMsg, "shed:"):
			shedN++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var p99 time.Duration
	if len(latencies) > 0 {
		p99 = latencies[int(0.99*float64(len(latencies)-1))]
	}
	if doneN == 0 {
		fail("no job completed during the soak — nothing was exercised")
	}
	if p99 > sloP99 {
		fail("p99 latency %s exceeds the %s SLO", p99.Round(time.Millisecond), sloP99)
	}
	if hz := soakHealthz(client, addr); hz != "ok" {
		fail("healthz after soak: %q (want ok)", hz)
	}
	mu.Lock()
	violations := append([]string(nil), errs...)
	mu.Unlock()

	fmt.Printf("teemd soak: %d clients / %d tenants for %s against %s\n", clients, tenants, dur, addr)
	fmt.Printf("  accepted %d (done %d, shed %d), cache hits %d, 429s honoured %d\n",
		len(jobs), doneN, shedN, cacheHit, rejected)
	fmt.Printf("  latency p99 %s (SLO %s)\n", p99.Round(time.Millisecond), sloP99)
	if len(violations) > 0 {
		for _, v := range violations {
			log.Printf("SLO violation: %s", v)
		}
		log.Fatalf("soak FAILED: %d violation(s)", len(violations))
	}
	fmt.Println("  soak SLOs held ✔")
}

// soakSubmit posts one job. A 429 returns its Retry-After as a positive
// duration instead of an error.
func soakSubmit(client *http.Client, addr string, body []byte) (service.JobStatus, time.Duration, error) {
	var js service.JobStatus
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return js, 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return js, 0, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		after := time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			after = time.Duration(s) * time.Second
		}
		return js, after, nil
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return js, 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
	}
	return js, 0, json.Unmarshal(raw, &js)
}

// soakAwait polls a job until it is terminal or the deadline passes.
func soakAwait(client *http.Client, addr, id string, deadline time.Time) (service.JobStatus, error) {
	var js service.JobStatus
	for {
		resp, err := client.Get(addr + "/v1/jobs/" + id)
		if err != nil {
			return js, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return js, err
		}
		if err := json.Unmarshal(raw, &js); err != nil {
			return js, fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
		}
		if js.Terminal() {
			return js, nil
		}
		if time.Now().After(deadline) {
			return js, fmt.Errorf("still %s at the settlement deadline", js.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// soakJob is one accepted soak submission and its observed outcome.
type soakJob struct {
	id      string
	want    string
	start   time.Time
	latency time.Duration
	status  service.Status
	errMsg  string
}

// soakVerify checks a done job end to end: CLI-identical result bytes
// and a telemetry stream that replays through to a "done" event.
func soakVerify(client *http.Client, addr string, a *soakJob) error {
	resp, err := client.Get(addr + "/v1/jobs/" + a.id + "/result")
	if err != nil {
		return err
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if string(text) != a.want {
		return fmt.Errorf("result differs from the CLI render (%d vs %d bytes)", len(text), len(a.want))
	}
	sresp, err := client.Get(addr + "/v1/jobs/" + a.id + "/stream")
	if err != nil {
		return err
	}
	stream, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		return fmt.Errorf("stream dropped: %v", err)
	}
	if !strings.Contains(string(stream), `"type":"done"`) {
		return fmt.Errorf("stream replay has no terminal done event")
	}
	return nil
}

// soakHealthz returns the daemon's reported health status.
func soakHealthz(client *http.Client, addr string) string {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return err.Error()
	}
	defer resp.Body.Close()
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return err.Error()
	}
	return hz.Status
}
