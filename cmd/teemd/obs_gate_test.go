package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"teem/internal/obs"
	"teem/internal/service"
)

// pprofAddr waits for the daemon's "pprof listening on" log line and
// returns the advertised address.
func pprofAddr(t *testing.T, d *daemon) string {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-d.logc:
			if !ok {
				t.Fatal("daemon log closed before the pprof line")
			}
			if rest, found := strings.CutPrefix(line, "teemd: pprof listening on "); found {
				return rest
			}
		case <-deadline:
			t.Fatal("teemd never reported its pprof address")
		}
	}
}

// TestObsGate is the make obs-gate acceptance test: boot a daemon with
// the profiling listener on, run a job, and verify the whole
// observability surface — JSON /metrics unchanged, Prometheus text
// exposition valid under content negotiation, lifecycle spans with the
// job's trace id on /trace and on the telemetry stream, and pprof
// answering on its own port.
func TestObsGate(t *testing.T) {
	d := startDaemon(t, "-pprof", "127.0.0.1:0")
	paddr := pprofAddr(t, d)

	code, body := d.post(t, "/v1/jobs", service.JobRequest{
		Preset:    "sunlight",
		Governors: []string{"ondemand"},
		Tenant:    "obs-gate",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var js service.JobStatus
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.TraceID == "" {
		t.Fatal("submit response carries no trace_id")
	}
	fin := d.waitTerminal(t, js.ID, 60*time.Second)
	if fin.Status != service.StatusDone {
		t.Fatalf("job ended %s: %s", fin.Status, fin.Error)
	}
	if fin.TraceID != js.TraceID {
		t.Errorf("status trace id %q differs from submit's %q", fin.TraceID, js.TraceID)
	}

	// JSON /metrics: default dialect, counters present.
	code, body = d.get(t, "/metrics")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"jobs_done"`)) {
		t.Fatalf("JSON metrics = %d: %s", code, body)
	}

	// Prometheus /metrics: negotiated by Accept, format-valid.
	req, err := http.NewRequest("GET", d.base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", obs.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Errorf("prom Content-Type = %q, want %q", got, obs.ContentType)
	}
	if err := obs.ValidateExposition(bytes.NewReader(prom)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, prom)
	}
	for _, want := range []string{
		"teemd_jobs_done_total",
		`teemd_tenant_submitted_total{tenant="obs-gate"}`,
		"teemd_job_run_seconds_bucket",
	} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// /trace: the job's lifecycle spans, by its trace id.
	code, body = d.get(t, "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace = %d: %s", code, body)
	}
	phases := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		if sp.Trace == js.TraceID {
			phases[sp.Phase] = true
		}
	}
	for _, want := range []string{"submit", "queue", "run", "done"} {
		if !phases[want] {
			t.Errorf("no %q span on /trace for trace %s (got %v)", want, js.TraceID, phases)
		}
	}

	// The telemetry stream stamps the same trace id on its events.
	code, body = d.get(t, "/v1/jobs/"+js.ID+"/stream")
	if code != http.StatusOK {
		t.Fatalf("stream = %d", code)
	}
	traced := false
	sc = bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "done" && ev.Trace == js.TraceID {
			traced = true
		}
	}
	if !traced {
		t.Error("stream done event does not carry the job's trace id")
	}

	// pprof answers on its dedicated listener, not the API port.
	presp, err := http.Get("http://" + paddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d", presp.StatusCode)
	}
	if code, _ := d.get(t, "/debug/pprof/"); code == http.StatusOK {
		t.Error("pprof is exposed on the API port; it must stay on its own listener")
	}
}
