// Command teemvet is the repo's domain lint gate: a multichecker running
// the four invariant analyzers from internal/analysis (determinism,
// hotpath, guards, apicontract) over the production sources.
//
// Usage:
//
//	teemvet [-list] [-run name,name] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 0 when the tree is clean, 1 when any analyzer reports a
// finding, 2 on operational errors (load or type-check failure). The
// analyzers, their annotations (//teem:hotpath, //teem:guards,
// //teem:order-insensitive, //teem:alloc-ok) and the waiver policy are
// documented in docs/static-analysis.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"teem/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("teemvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated subset of analyzers to run (default all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: teemvet [-list] [-run name,name] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the teem invariant analyzers (see docs/static-analysis.md).\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "teemvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	pkgs, err := analysis.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "teemvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(suite, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "teemvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "teemvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
