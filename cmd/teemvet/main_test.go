package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTeemvet compiles the teemvet binary once per test binary.
func buildTeemvet(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "teemvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building teemvet: %v\n%s", err, out)
	}
	return bin
}

// run executes the binary in dir and returns stdout+stderr and the exit
// code.
func runVet(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running teemvet: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// writeModule lays out a throwaway module for the binary to vet. files
// maps relative paths to contents; a minimal go.mod is added.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.24\n"
	for rel, src := range files {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// A module with a wall-clock read inside a deterministic-core package
// path must fail the gate with a positioned determinism finding.
func TestSeededViolationExitsNonZero(t *testing.T) {
	bin := buildTeemvet(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `// Package sim is a seeded-violation fixture.
package sim

import "time"

// Stamp leaks the wall clock into the deterministic core.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	out, code := runVet(t, bin, dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	for _, needle := range []string{"sim.go:7:", "time.Now reads the wall clock", "[determinism]"} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

// The same construct outside the deterministic core is not a violation —
// the clean module exits zero with no findings.
func TestCleanModuleExitsZero(t *testing.T) {
	bin := buildTeemvet(t)
	dir := writeModule(t, map[string]string{
		"internal/clockd/clockd.go": `// Package clockd is wall-clock country; the core checks stay silent.
package clockd

import "time"

// Stamp is fine here.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	out, code := runVet(t, bin, dir, "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("expected no output, got:\n%s", out)
	}
}

// The production tree itself must hold every invariant: this is the
// process-level twin of internal/analysis's TestTreeIsClean, proving the
// shipped binary (not just the library) gates cleanly over ./...
func TestRealTreeIsClean(t *testing.T) {
	bin := buildTeemvet(t)
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	out, code := runVet(t, bin, root, "./...")
	if code != 0 {
		t.Fatalf("teemvet over the real tree: exit %d\n%s", code, out)
	}
}

// -run selects a subset; an unknown name is an operational error (2).
func TestRunSubsetAndUnknownAnalyzer(t *testing.T) {
	bin := buildTeemvet(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `// Package sim trips determinism but not apicontract.
package sim

import "time"

// Stamp leaks the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	if out, code := runVet(t, bin, dir, "-run", "apicontract", "./..."); code != 0 {
		t.Errorf("apicontract-only run: exit %d, want 0\n%s", code, out)
	}
	if out, code := runVet(t, bin, dir, "-run", "determinism", "./..."); code != 1 {
		t.Errorf("determinism-only run: exit %d, want 1\n%s", code, out)
	}
	if _, code := runVet(t, bin, dir, "-run", "nope", "./..."); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
}
