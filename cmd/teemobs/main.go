// Command teemobs is the observability companion to teemd: a small
// client for the daemon's metrics, trace and health endpoints, so an
// operator (or a CI gate) can scrape, validate and tail a live daemon
// without hand-rolled curl incantations.
//
// Usage:
//
//	teemobs metrics  -addr http://127.0.0.1:8080            # Prometheus text exposition
//	teemobs metrics  -addr ... -format json                  # the JSON document instead
//	teemobs metrics  -addr ... -validate                     # scrape + format-validate, print nothing
//	teemobs trace    -addr ...                               # dump the buffered lifecycle spans
//	teemobs trace    -addr ... -follow                       # ...and keep following live
//	teemobs health   -addr ...                               # print /healthz; exit 1 unless status is "ok"
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"teem/internal/buildinfo"
	"teem/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("teemobs: ")

	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "metrics":
		runMetrics(os.Args[2:])
	case "trace":
		runTrace(os.Args[2:])
	case "health":
		runHealth(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Println(buildinfo.String("teemobs"))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: teemobs {metrics|trace|health} [-addr http://127.0.0.1:8080] ...")
	os.Exit(2)
}

func runMetrics(args []string) {
	fs := flag.NewFlagSet("teemobs metrics", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the teemd to scrape")
	format := fs.String("format", "prom", "output format: prom (text exposition) or json")
	validate := fs.Bool("validate", false, "validate the text exposition instead of printing it")
	_ = fs.Parse(args)

	accept := obs.ContentType
	if *format == "json" {
		if *validate {
			log.Fatal("-validate applies to the prom format only")
		}
		accept = "application/json"
	} else if *format != "prom" {
		log.Fatalf("unknown format %q (want prom or json)", *format)
	}
	req, err := http.NewRequest("GET", *addr+"/metrics", nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Accept", accept)
	body := fetch(req)
	if *validate {
		if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
			log.Fatalf("exposition invalid: %v", err)
		}
		fmt.Printf("exposition valid (%d bytes)\n", len(body))
		return
	}
	os.Stdout.Write(body)
}

func runTrace(args []string) {
	fs := flag.NewFlagSet("teemobs trace", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the teemd to tail")
	follow := fs.Bool("follow", false, "keep following new spans until interrupted")
	_ = fs.Parse(args)

	url := *addr + "/trace"
	if *follow {
		url += "?follow=1"
	}
	resp, err := (&http.Client{}).Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		log.Fatal(err)
	}
}

func runHealth(args []string) {
	fs := flag.NewFlagSet("teemobs health", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the teemd to check")
	_ = fs.Parse(args)

	req, err := http.NewRequest("GET", *addr+"/healthz", nil)
	if err != nil {
		log.Fatal(err)
	}
	body := fetch(req)
	os.Stdout.Write(body)
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		log.Fatalf("decoding healthz: %v", err)
	}
	if h.Status != "ok" {
		log.Fatalf("daemon is %s", h.Status)
	}
}

// fetch performs one request and returns the body; any transport error
// or non-2xx status is fatal — teemobs is a checker, not a retrier.
func fetch(req *http.Request) []byte {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	return body
}
