// Process-level smoke tests for the teemscenario CLI: flag parsing, the
// -list/-dump/-preset/-replay surfaces, and the exit-code contract the
// scenario-gate CI target depends on (non-zero on a violating corpus).
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "teemscenario-smoke-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build := exec.Command("go", "build", "-o", dir, "teem/cmd/teemscenario")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "building teemscenario: %v\n", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "teemscenario")
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes the binary and returns stdout, stderr and the exit code.
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestListFlag(t *testing.T) {
	out, _, code := run(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"presets:", "sunlight", "rush-hour", "replay-sample", "governors:", "teem"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output lacks %q:\n%s", want, out)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	out, _, code := run(t, "-version")
	if code != 0 {
		t.Fatalf("-version exited %d", code)
	}
	if !strings.HasPrefix(out, "teemscenario ") || !strings.Contains(out, "commit") {
		t.Errorf("-version output: %q", out)
	}
}

func TestDumpIsLoadable(t *testing.T) {
	out, _, code := run(t, "-preset", "sunlight", "-dump")
	if code != 0 {
		t.Fatalf("-dump exited %d", code)
	}
	// The dump must round-trip through -f.
	path := filepath.Join(t.TempDir(), "sunlight.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, _, code := run(t, "-f", path, "-dump")
	if code != 0 {
		t.Fatalf("-f round-trip exited %d", code)
	}
	if out != out2 {
		t.Error("dump → load → dump is not a fixed point")
	}
}

func TestPresetRunPasses(t *testing.T) {
	out, stderr, code := run(t, "-preset", "sunlight", "-govs", "ondemand")
	if code != 0 {
		t.Fatalf("passing preset exited %d: %s", code, stderr)
	}
	for _, want := range []string{"scenario × governor grid", "sunlight", "ondemand", "pass"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output lacks %q:\n%s", want, out)
		}
	}
}

// The exit-code gate: a violating corpus must exit non-zero and name the
// violation.
func TestViolatingCorpusExitsNonZero(t *testing.T) {
	violating := `{
  "name": "doomed",
  "map": {"Big": 4, "Little": 2, "UseGPU": true},
  "events": [
    {"at_s": 0, "kind": "arrival", "app": "COVARIANCE"},
    {"at_s": 5, "kind": "assert", "node": "A15", "max_c": 0.01}
  ]
}`
	path := filepath.Join(t.TempDir(), "doomed.json")
	if err := os.WriteFile(path, []byte(violating), 0o644); err != nil {
		t.Fatal(err)
	}
	out, stderr, code := run(t, "-f", path, "-govs", "ondemand")
	if code == 0 {
		t.Fatalf("violating corpus exited 0:\n%s", out)
	}
	if !strings.Contains(stderr, "violation") {
		t.Errorf("stderr does not report the violation: %s", stderr)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("grid output does not mark the failing cell:\n%s", out)
	}
}

func TestReplayFlag(t *testing.T) {
	trace := `{
  "name": "smoke-replay",
  "records": [
    {"app": "MVT", "at_s": 0},
    {"app": "SYRK", "at_s": 2, "priority": 1}
  ]
}`
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	out, stderr, code := run(t, "-replay", path, "-govs", "ondemand")
	if code != 0 {
		t.Fatalf("-replay exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "smoke-replay") {
		t.Errorf("replay output lacks the compiled scenario name:\n%s", out)
	}
}

// Flag misuse and bad inputs must exit non-zero with a diagnostic.
func TestBadInputsExitNonZero(t *testing.T) {
	cases := [][]string{
		{"-preset", "no-such-preset"},
		{"-integrator", "rk4", "-preset", "sunlight"},
		{"-f", "/nonexistent/scenario.json"},
		{"-replay", "/nonexistent/trace.json"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		_, stderr, code := run(t, args...)
		if code == 0 {
			t.Errorf("%v exited 0", args)
		}
		if stderr == "" {
			t.Errorf("%v produced no diagnostic", args)
		}
	}
}
