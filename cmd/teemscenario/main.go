// Command teemscenario runs declarative dynamic-workload scenarios —
// application arrivals with priorities and deadlines (higher priority
// preempts), departures that cancel queued or live jobs, ambient steps
// and ramps, mid-run governor / partition / mapping switches — against
// the simulated platform, fanning the scenario × governor grid across a
// bounded worker pool. Assertion violations are reported and reflected in
// the exit code, so scenario files double as an executable regression
// corpus (`make scenario-gate` runs the preset corpus in CI).
//
// Hardware is an axis: -platform selects one platform from the builtin
// catalog (by name) or a bundle JSON file, and -platforms fans the same
// corpus out as a platform × scenario × governor grid ("all" sweeps the
// whole catalog — `make platform-gate`).
//
// Recorded arrival logs replay as scenarios via -replay: each record
// (app, at_s, priority, deadline_s, hold_s) becomes an arrival — plus a
// departure when the tenant's hold expires — compiled to the same
// deterministic timeline a hand-authored scenario uses.
//
// Usage:
//
//	teemscenario -preset rush-hour -govs ondemand,teem
//	teemscenario -f sunlight.json -govs teem -workers 4
//	teemscenario -platform merlin-m3 -govs teem
//	teemscenario -platforms all -govs ondemand,teem
//	teemscenario -replay trace.json -govs teem
//	teemscenario -preset sparse-replay -supersteps=false   # force tick-by-tick
//	teemscenario -list
//	teemscenario -preset sunlight -dump          # print the JSON schema by example
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"teem/internal/buildinfo"
	"teem/internal/obs"
	"teem/internal/platform"
	"teem/internal/scenario"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("teemscenario: ")

	var (
		files      = flag.String("f", "", "comma-separated scenario JSON files")
		replay     = flag.String("replay", "", "comma-separated recorded arrival-log JSON files to replay as scenarios")
		preset     = flag.String("preset", "", "built-in scenario: sunlight, rush-hour, core-loss, preempt-storm, tenant-churn, replay-sample, sparse-replay (empty with -f)")
		govs       = flag.String("govs", "", "comma-separated governors to grid over (default: the union of the scenarios' initial policies)")
		workers    = flag.Int("workers", 0, "worker pool bound (0 = one per CPU, 1 = serial)")
		integrator = flag.String("integrator", "exact", "thermal integrator: exact or euler")
		supersteps = flag.Bool("supersteps", true, "jump provably steady intervals in one exact propagator application (exact integrator only)")
		platRef    = flag.String("platform", "", "platform: builtin catalog name or bundle JSON file (with -thermal: a bare SoC description JSON)")
		platforms  = flag.String("platforms", "", `comma-separated catalog platforms to grid over, or "all" for the whole catalog`)
		netPath    = flag.String("thermal", "", "custom thermal network (JSON); requires -platform with a bare SoC description")
		stats      = flag.Bool("stats", false, "print the per-cell engine flight recorder (tick/superstep counts, cache hits, phase wall time) after the grid")
		list       = flag.Bool("list", false, "list built-in presets, platforms and governors, then exit")
		dump       = flag.Bool("dump", false, "print the selected scenarios as JSON, then exit")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("teemscenario"))
		return
	}

	if *list {
		fmt.Println("presets:")
		for _, s := range scenario.Presets() {
			fmt.Printf("  %-10s %d events, horizon %gs\n", s.Name, len(s.Events), s.EndS())
		}
		fmt.Println("platforms:")
		for _, name := range platform.Names() {
			b, err := platform.Get(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s %-6s %s\n", name, b.Class, b.Description)
		}
		fmt.Printf("governors: %s\n", strings.Join(scenario.GovernorNames(), ", "))
		return
	}

	var scs []*scenario.Scenario
	if *files != "" {
		for _, path := range strings.Split(*files, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			s, err := scenario.Load(f)
			f.Close()
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			scs = append(scs, s)
		}
	}
	if *replay != "" {
		for _, path := range strings.Split(*replay, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				log.Fatal(err)
			}
			tr, err := scenario.LoadTrace(f)
			f.Close()
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			s, err := scenario.FromTrace(tr)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			scs = append(scs, s)
		}
	}
	if *preset != "" {
		s := scenario.PresetByName(*preset)
		if s == nil {
			log.Fatalf("unknown preset %q (try -list)", *preset)
		}
		scs = append(scs, s)
	}
	if len(scs) == 0 {
		scs = scenario.Presets()
	}

	if *dump {
		for _, s := range scs {
			if err := s.Save(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	rc := scenario.Config{DisableSuperstep: !*supersteps}
	if *stats {
		// Opt in to per-phase wall timing: the flight-recorder counters
		// are always on, the clock reads only with -stats.
		rc.Clock = obs.Nanotime
	}
	switch *integrator {
	case "exact":
		rc.Integrator = sim.IntegratorExact
	case "euler":
		rc.Integrator = sim.IntegratorEuler
	default:
		log.Fatalf("unknown integrator %q (want exact or euler)", *integrator)
	}
	switch {
	case *platforms != "":
		if *platRef != "" || *netPath != "" {
			log.Fatal("-platforms owns the platform axis; it cannot combine with -platform or -thermal")
		}
	case *netPath != "":
		// Explicit pair: a bare SoC description plus its network. The
		// half-specified forms the old flags accepted are rejected by
		// the scenario layer now — the silent Exynos completion is gone.
		if *platRef == "" {
			log.Fatal("-thermal requires -platform with a bare SoC description JSON")
		}
		f, err := os.Open(*platRef)
		if err != nil {
			log.Fatal(err)
		}
		rc.Platform, err = soc.LoadPlatform(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		f, err = os.Open(*netPath)
		if err != nil {
			log.Fatal(err)
		}
		rc.Net, err = thermal.LoadNetwork(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *platRef != "":
		// Catalog name or bundle file, resolved by the scenario layer.
		rc.PlatformName = *platRef
	}

	var governors []string
	if *govs != "" {
		for _, g := range strings.Split(*govs, ",") {
			governors = append(governors, strings.TrimSpace(g))
		}
	}
	if len(governors) == 0 {
		// Grid over the union of the scenarios' initial policies.
		seen := map[string]bool{}
		for _, s := range scs {
			name := s.Governor
			if name == "" {
				name = "ondemand"
			}
			if !seen[name] {
				seen[name] = true
				governors = append(governors, name)
			}
		}
	}

	if *platforms != "" {
		var plats []string
		if *platforms == "all" {
			plats = platform.Names()
		} else {
			for _, p := range strings.Split(*platforms, ",") {
				plats = append(plats, strings.TrimSpace(p))
			}
		}
		grid, err := scenario.RunPlatformGrid(plats, scs, governors, rc, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(grid.Render())
		if *stats {
			var cells []*scenario.Result
			for _, plane := range grid.Cells {
				for _, row := range plane {
					cells = append(cells, row...)
				}
			}
			printStats(cells)
		}
		if n := grid.Violations(); n > 0 {
			log.Fatalf("%d assertion violation(s)", n)
		}
		return
	}

	grid, err := scenario.RunGrid(scs, governors, rc, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(grid.Render())
	if *stats {
		var cells []*scenario.Result
		for _, row := range grid.Cells {
			cells = append(cells, row...)
		}
		printStats(cells)
	}
	if n := grid.Violations(); n > 0 {
		log.Fatalf("%d assertion violation(s)", n)
	}
}

// printStats renders each cell's engine flight recorder plus the grid
// aggregate. Cells that errored before producing a result are skipped.
func printStats(cells []*scenario.Result) {
	var agg obs.RunStats
	for _, r := range cells {
		if r == nil || r.Sim == nil {
			continue
		}
		fmt.Printf("\nflight recorder: %s under %s on %s\n", r.Scenario, r.Governor, r.Platform)
		fmt.Print(indent(r.Sim.Stats.String()))
		agg.Add(r.Sim.Stats)
	}
	fmt.Print("\nflight recorder: grid aggregate\n")
	fmt.Print(indent(agg.String()))
}

// indent prefixes every line with two spaces for the stats blocks.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
