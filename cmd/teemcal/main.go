// Command teemcal prints the thermal/power calibration of a platform
// model: steady-state temperatures per operating point, heating and
// cooling time scales, and the board power envelope. Use it to verify a
// platform description before running experiments, or to re-derive the
// targets documented in DESIGN.md §4. Everything it prints — the
// frequency ladder, node names, trip targets — derives from the selected
// platform, so it calibrates any catalog entry or bundle file, not just
// the Exynos.
//
// Usage:
//
//	teemcal
//	teemcal -app SR -big 4 -little 4
//	teemcal -platform harrier-s16
package main

import (
	"flag"
	"fmt"
	"log"

	"teem/internal/buildinfo"
	"teem/internal/mapping"
	"teem/internal/platform"
	"teem/internal/power"
	"teem/internal/report"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("teemcal: ")

	var (
		appCode = flag.String("app", "CV", "application used for the load cases")
		nBig    = flag.Int("big", 3, "big cores in the load mapping")
		nLittle = flag.Int("little", 2, "LITTLE cores in the load mapping")
		platRef = flag.String("platform", "", "platform: builtin catalog name or bundle JSON file (default exynos5422)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("teemcal"))
		return
	}

	b := platform.Default()
	if *platRef != "" {
		var err error
		b, err = platform.Resolve(*platRef)
		if err != nil {
			log.Fatal(err)
		}
	}
	plat, net := b.SoC, b.Net
	app, err := workload.ByShort(*appCode)
	if err != nil {
		log.Fatal(err)
	}
	m := mapping.Mapping{Big: *nBig, Little: *nLittle, UseGPU: true}
	big, little, gpu := plat.Big(), plat.Little(), plat.GPU()

	// Power envelope.
	pm, err := power.NewModel(plat)
	if err != nil {
		log.Fatal(err)
	}
	idle, err := pm.Evaluate(power.IdleLoads(plat, 40), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform %s (%s): idle %.2f W (baseline %.2f W)\n\n",
		b.Name, b.Class, idle.TotalW(), plat.BoardBaselineW)

	// Steady-state ladder across big OPPs for the chosen load: six
	// points from the hardware throttle cap to the maximum frequency.
	capMHz := big.FloorOPP(plat.TripCapMHz).FreqMHz
	ladder := oppLadder(big, capMHz, 6)
	t := &report.Table{
		Title: fmt.Sprintf("steady-state temperatures, %s on %s (both chunks busy)",
			app.Name, m),
		Headers: []string{"big MHz", big.Name + " (°C)", gpu.Name + " (°C)", "pkg (°C)", "board (W)"},
	}
	for _, f := range ladder {
		cfg := sim.Config{
			Platform: plat, Net: net, App: app,
			Map: m, Part: mapping.Partition{Num: 4, Den: 8},
			Freq: mapping.FreqSetting{BigMHz: f, LittleMHz: little.MaxFreqMHz(), GPUMHz: gpu.MaxFreqMHz()},
		}
		e, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := e.SteadyTemps(1, 1)
		if err != nil {
			log.Fatal(err)
		}
		bi := net.NodeIndex(big.Name)
		gi := net.NodeIndex(gpu.Name)
		pi := net.NodeIndex("pkg")
		t.AddRow(
			fmt.Sprintf("%d", f),
			fmt.Sprintf("%.1f", st[bi]),
			fmt.Sprintf("%.1f", st[gi]),
			fmt.Sprintf("%.1f", st[pi]),
			"",
		)
	}
	fmt.Println(t.Render())

	// Transient time scales against the platform's own trip points,
	// under full load (every cluster maxed, big at the given frequency,
	// leakage re-evaluated at the live temperatures each step).
	bi := net.NodeIndex(big.Name)
	cross := func(start []float64, target float64, bigMHz int, cooling bool) float64 {
		tm, err := thermal.NewModel(net, plat.AmbientC)
		if err != nil {
			log.Fatal(err)
		}
		if start != nil {
			if err := tm.SetTemps(start); err != nil {
				log.Fatal(err)
			}
		}
		temps := make([]float64, len(net.Nodes))
		for ts := 0.0; ts < 600; ts += 0.05 {
			for i := range temps {
				temps[i] = tm.Temp(i)
			}
			inj, err := fullLoadInj(plat, net, pm, bigMHz, temps)
			if err != nil {
				log.Fatal(err)
			}
			if err := tm.Step(inj, 0.05); err != nil {
				log.Fatal(err)
			}
			if (!cooling && tm.Temp(bi) >= target) || (cooling && tm.Temp(bi) <= target) {
				return ts
			}
		}
		return -1
	}
	show := func(label string, v float64) {
		if v < 0 {
			fmt.Printf("%s:  never (steady state on the other side)\n", label)
			return
		}
		fmt.Printf("%s: %6.1f s\n", label, v)
	}
	maxMHz := big.MaxFreqMHz()
	show(fmt.Sprintf("cold start → %.0f °C at %d MHz", plat.TripC-10, maxMHz),
		cross(nil, plat.TripC-10, maxMHz, false))
	show(fmt.Sprintf("cold start → trip %.0f °C at %d MHz", plat.TripC, maxMHz),
		cross(nil, plat.TripC, maxMHz, false))
	// Cooling from a tripped chip (every node at most at the trip
	// point) down to the release temperature, at the hardware cap.
	tripped := make([]float64, len(net.Nodes))
	hot, err := fullLoadSteady(plat, net, pm, maxMHz)
	if err != nil {
		log.Fatal(err)
	}
	for i := range tripped {
		tripped[i] = min(hot[i], plat.TripC)
	}
	show(fmt.Sprintf("tripped %.0f → release %.0f °C at %d MHz", plat.TripC, plat.TripReleaseC, capMHz),
		cross(tripped, plat.TripReleaseC, capMHz, true))
}

// oppLadder picks n frequencies spanning the big cluster's OPP table
// from the hardware cap to the maximum, evenly by OPP index.
func oppLadder(c *soc.Cluster, fromMHz int, n int) []int {
	lo := c.OPPIndex(fromMHz)
	if lo < 0 {
		lo = 0
	}
	hi := c.NumOPPs() - 1
	if n > hi-lo+1 {
		n = hi - lo + 1
	}
	var freqs []int
	for k := 0; k < n; k++ {
		i := lo + k*(hi-lo)/(n-1)
		f := c.OPPs[i].FreqMHz
		if len(freqs) == 0 || freqs[len(freqs)-1] != f {
			freqs = append(freqs, f)
		}
	}
	return freqs
}

// fullLoadInj builds the node heat-injection vector for every cluster
// fully loaded (big at bigMHz, others at max), with leakage evaluated at
// the given node temperatures and half the board baseline on the
// package, matching the simulator's default split.
func fullLoadInj(plat *soc.Platform, net *thermal.Network, pm *power.Model, bigMHz int, temps []float64) ([]float64, error) {
	inj := make([]float64, len(net.Nodes))
	inj[net.NodeIndex("pkg")] += 0.5 * plat.BoardBaselineW
	for i := range plat.Clusters {
		c := &plat.Clusters[i]
		f := c.MaxFreqMHz()
		if c.Kind == soc.BigCPU {
			f = bigMHz
		}
		node := net.NodeIndex(c.Name)
		dyn, leak, err := pm.ClusterPower(i, power.ClusterLoad{
			FreqMHz:     f,
			ActiveCores: c.NumCores,
			OnCores:     c.NumCores,
			Utilization: 1,
			Activity:    1,
			TempC:       temps[node],
		})
		if err != nil {
			return nil, err
		}
		inj[node] += dyn + leak
	}
	return inj, nil
}

// fullLoadSteady iterates the leakage/temperature fixed point to the
// full-load steady state.
func fullLoadSteady(plat *soc.Platform, net *thermal.Network, pm *power.Model, bigMHz int) ([]float64, error) {
	tm, err := thermal.NewModel(net, plat.AmbientC)
	if err != nil {
		return nil, err
	}
	temps := make([]float64, len(net.Nodes))
	for i := range temps {
		temps[i] = plat.AmbientC
	}
	var st []float64
	for round := 0; round < 8; round++ {
		inj, err := fullLoadInj(plat, net, pm, bigMHz, temps)
		if err != nil {
			return nil, err
		}
		st, err = tm.SteadyState(inj)
		if err != nil {
			return nil, err
		}
		copy(temps, st)
	}
	return st, nil
}
