// Command teemcal prints the thermal/power calibration of the platform
// model: steady-state temperatures per operating point, heating and
// cooling time scales, and the board power envelope. Use it to verify a
// platform description before running experiments, or to re-derive the
// targets documented in DESIGN.md §4.
//
// Usage:
//
//	teemcal
//	teemcal -app SR -big 4 -little 4
package main

import (
	"flag"
	"fmt"
	"log"

	"teem/internal/buildinfo"
	"teem/internal/mapping"
	"teem/internal/power"
	"teem/internal/report"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("teemcal: ")

	var (
		appCode = flag.String("app", "CV", "application used for the load cases")
		nBig    = flag.Int("big", 3, "big cores in the load mapping")
		nLittle = flag.Int("little", 2, "LITTLE cores in the load mapping")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("teemcal"))
		return
	}

	plat := soc.Exynos5422()
	net := thermal.Exynos5422Network()
	app, err := workload.ByShort(*appCode)
	if err != nil {
		log.Fatal(err)
	}
	m := mapping.Mapping{Big: *nBig, Little: *nLittle, UseGPU: true}

	// Power envelope.
	pm, err := power.NewModel(plat)
	if err != nil {
		log.Fatal(err)
	}
	idle, err := pm.Evaluate(power.IdleLoads(plat, 40), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("board power envelope: idle %.2f W (baseline %.2f W)\n\n", idle.TotalW(), plat.BoardBaselineW)

	// Steady-state ladder per big OPP for the chosen load.
	t := &report.Table{
		Title: fmt.Sprintf("steady-state temperatures, %s on %s (both chunks busy)",
			app.Name, m),
		Headers: []string{"big MHz", "A15 (°C)", "Mali (°C)", "pkg (°C)", "board (W)"},
	}
	for _, f := range []int{900, 1200, 1400, 1600, 1800, 2000} {
		cfg := sim.Config{
			Platform: plat, Net: net, App: app,
			Map: m, Part: mapping.Partition{Num: 4, Den: 8},
			Freq: mapping.FreqSetting{BigMHz: f, LittleMHz: 1400, GPUMHz: 600},
		}
		e, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := e.SteadyTemps(1, 1)
		if err != nil {
			log.Fatal(err)
		}
		bi := net.NodeIndex("A15")
		gi := net.NodeIndex("MaliT628")
		pi := net.NodeIndex("pkg")
		t.AddRow(
			fmt.Sprintf("%d", f),
			fmt.Sprintf("%.1f", st[bi]),
			fmt.Sprintf("%.1f", st[gi]),
			fmt.Sprintf("%.1f", st[pi]),
			"",
		)
	}
	fmt.Println(t.Render())

	// Transient time scales.
	cross := func(start []float64, target float64, fBig int) float64 {
		tm, err := thermal.NewModel(net, plat.AmbientC)
		if err != nil {
			log.Fatal(err)
		}
		if start != nil {
			if err := tm.SetTemps(start); err != nil {
				log.Fatal(err)
			}
		}
		// Fixed representative powers for the big@2000 load case.
		p := []float64{4.5, 0.4, 2.2, 1.85}
		if fBig == 900 {
			p[0] = 1.5
		}
		bi := net.NodeIndex("A15")
		for ts := 0.0; ts < 300; ts += 0.05 {
			if err := tm.Step(p, 0.05); err != nil {
				log.Fatal(err)
			}
			if (fBig != 900 && tm.Temp(bi) >= target) || (fBig == 900 && tm.Temp(bi) <= target) {
				return ts
			}
		}
		return -1
	}
	fmt.Printf("cold start → 85 °C at 2000 MHz: %6.1f s\n", cross(nil, 85, 2000))
	fmt.Printf("cold start → 95 °C at 2000 MHz: %6.1f s\n", cross(nil, 95, 2000))
	fmt.Printf("warm 90 °C → 95 °C at 2000 MHz: %6.1f s\n",
		cross([]float64{90, 75, 85, 85}, 95, 2000))
	fmt.Printf("throttled 95 → 87 °C at 900 MHz: %6.1f s\n",
		cross([]float64{95, 75, 88, 84}, 87, 900))
}
