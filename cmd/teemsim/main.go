// Command teemsim runs a single application on a simulated platform
// under a chosen DVFS policy and prints the run summary, optionally with
// Fig. 1 style temperature/frequency charts or a CSV trace. The hardware
// comes from the builtin platform catalog (-platform by name, default
// exynos5422), a bundle JSON file, or a bare SoC description paired with
// -thermal.
//
// Usage:
//
//	teemsim -app CV -governor teem -big 3 -little 2 -partition 4 -chart
//	teemsim -app SR -governor ondemand -csv trace.csv
//	teemsim -app CV -platform merlin-m3 -governor teem
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"teem/internal/buildinfo"
	"teem/internal/core"
	"teem/internal/governor"
	"teem/internal/mapping"
	"teem/internal/platform"
	"teem/internal/sim"
	"teem/internal/soc"
	"teem/internal/thermal"
	"teem/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("teemsim: ")

	var (
		appCode   = flag.String("app", "CV", "application code (2D, CV, GM, 2M, MV, S2, SR, CR)")
		govName   = flag.String("governor", "teem", "policy: teem, ondemand, performance, powersave, conservative")
		nBig      = flag.Int("big", 3, "big cores used")
		nLittle   = flag.Int("little", 2, "LITTLE cores used")
		partNum   = flag.Int("partition", 4, "CPU work-item share in eighths (0..8)")
		threshold = flag.Float64("threshold", 85, "TEEM thermal threshold (°C)")
		deltaMHz  = flag.Int("delta", 200, "TEEM frequency step (MHz)")
		floorMHz  = flag.Int("floor", 1400, "TEEM frequency floor (MHz)")
		noTrip    = flag.Bool("no-hw-protect", false, "disable the firmware thermal trip")
		chart     = flag.Bool("chart", false, "print temperature/frequency charts")
		csvPath   = flag.String("csv", "", "write the trace as CSV to this file")
		cold      = flag.Bool("cold", false, "start from ambient instead of the steady-regime protocol")
		platRef   = flag.String("platform", "", "platform: builtin catalog name or bundle JSON file (with -thermal: a bare SoC description JSON); default exynos5422")
		netPath   = flag.String("thermal", "", "custom thermal network (JSON); requires -platform with a bare SoC description")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("teemsim"))
		return
	}

	app, err := workload.ByShort(*appCode)
	if err != nil {
		log.Fatal(err)
	}
	var (
		plat *soc.Platform
		net  *thermal.Network
	)
	switch {
	case *netPath != "":
		// Explicit pair: a bare SoC description plus its network. Half a
		// pair no longer completes silently with an Exynos preset.
		if *platRef == "" {
			log.Fatal("-thermal requires -platform with a bare SoC description JSON")
		}
		f, err := os.Open(*platRef)
		if err != nil {
			log.Fatal(err)
		}
		plat, err = soc.LoadPlatform(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		f, err = os.Open(*netPath)
		if err != nil {
			log.Fatal(err)
		}
		net, err = thermal.LoadNetwork(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *platRef != "":
		b, err := platform.Resolve(*platRef)
		if err != nil {
			log.Fatal(err)
		}
		plat, net = b.SoC, b.Net
	default:
		b := platform.Default()
		plat, net = b.SoC, b.Net
	}
	cfg := sim.Config{
		Platform:         plat,
		Net:              net,
		App:              app,
		Map:              mapping.Mapping{Big: *nBig, Little: *nLittle, UseGPU: *partNum < 8},
		Part:             mapping.Partition{Num: *partNum, Den: 8},
		DisableHWProtect: *noTrip,
	}
	switch *govName {
	case "teem":
		p := core.DefaultParams()
		p.ThresholdC = *threshold
		p.DeltaMHz = *deltaMHz
		p.FloorMHz = *floorMHz
		cfg.Governor = core.NewController(p)
	case "ondemand":
		cfg.Governor = governor.NewOndemand()
	case "performance":
		cfg.Governor = governor.Performance{}
	case "powersave":
		cfg.Governor = governor.Powersave{}
	case "conservative":
		cfg.Governor = governor.NewConservative()
	case "none":
		cfg.Governor = nil
	default:
		log.Fatalf("unknown governor %q", *govName)
	}

	var res *sim.Result
	if *cold {
		e, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err = e.Run()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res, err = sim.RunWarm(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%s on %s, partition %d/8, governor %s\n",
		app.Name, cfg.Map, *partNum, *govName)
	fmt.Printf("  execution time : %.1f s (completed: %v)\n", res.ExecTimeS, res.Completed)
	fmt.Printf("  energy         : %.0f J (avg %.2f W)\n", res.EnergyJ, res.AvgPowerW)
	fmt.Printf("  big temperature: avg %.1f °C, peak %.1f °C, variance %.2f, gradient %.2f °C/s\n",
		res.AvgTempC, res.PeakTempC, res.TempVarC2, res.TempGradCps)
	fmt.Printf("  effective fbig : %.0f MHz, %d DVFS transitions, %d hardware trips\n",
		res.AvgBigFreqMHz, res.FreqTransitions, res.ThrottleEvents)

	if *chart {
		fmt.Println()
		bigName := plat.Big().Name
		fmt.Print(res.Trace.RenderTempAndFreq(bigName, bigName, 72, 14))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.Trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d samples)\n", *csvPath, res.Trace.Len())
	}
}
