package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSimRun-4   \t3360\t   347015 ns/op\t  186872 B/op\t      46 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid -benchmem line")
	}
	if b.Name != "BenchmarkSimRun" {
		t.Errorf("Name = %q, want BenchmarkSimRun (GOMAXPROCS suffix stripped)", b.Name)
	}
	if b.Iterations != 3360 || b.NsPerOp != 347015 || b.BytesPerOp != 186872 || b.AllocsPerOp != 46 || !b.HasMem {
		t.Errorf("parsed %+v", b)
	}

	b, ok = parseLine("BenchmarkStep \t15378547\t        71.54 ns/op")
	if !ok || b.NsPerOp != 71.54 || b.HasMem {
		t.Errorf("plain ns/op line parsed as %+v ok=%v", b, ok)
	}

	for _, line := range []string{
		"ok  \tteem/internal/sim\t1.529s",
		"PASS",
		"goos: linux",
		"Benchmark",                   // no fields
		"BenchmarkX notanint 3 ns/op", // bad iteration count
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestParseLineKeepsNonNumericSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkFig5-row-abc 10 5 ns/op")
	if !ok || b.Name != "BenchmarkFig5-row-abc" {
		t.Errorf("non-numeric suffix mangled: %+v ok=%v", b, ok)
	}
}
