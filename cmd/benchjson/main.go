// Command benchjson converts `go test -bench -benchmem` text output into a
// JSON snapshot, so the performance trajectory of the hot paths (sim tick,
// Fig. 5 serial/parallel, thermal stepping) is tracked as a machine-readable
// artifact across PRs.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem ./... | benchjson -out BENCH_2026-07-28.json
//
// With -out "" the JSON goes to stdout. Non-benchmark lines are ignored, so
// the full `go test` stream can be piped straight in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"teem/internal/buildinfo"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// HasMem records whether -benchmem columns were present (so a true
	// zero allocs/op is distinguishable from "not measured").
	HasMem bool `json:"has_mem"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default: stdout)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("benchjson"))
		return
	}

	snap := Snapshot{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// parseLine recognises benchmark result lines such as
//
//	BenchmarkSimRun-4   3360   347015 ns/op   186872 B/op   46 allocs/op
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	// Strip the -GOMAXPROCS suffix so names are stable across runners.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
			b.HasMem = true
		case "allocs/op":
			b.AllocsPerOp = int64(v)
			b.HasMem = true
		}
	}
	if b.NsPerOp == 0 && !b.HasMem {
		return Benchmark{}, false
	}
	return b, true
}
