// Command teemeval runs the full paper evaluation on the simulated
// Exynos 5422: the Fig. 1 motivation comparison, the Fig. 5 (a/b/c)
// three-approach comparison, the §V.D memory table, the design-space
// counts of Eqs. (1)–(2), and the controller ablations.
//
// Usage:
//
//	teemeval                 # everything at mapping 2L+4B
//	teemeval -only fig5      # a single experiment
//	teemeval -big 3          # Fig. 5 at mapping 2L+3B
//	teemeval -workers 8      # bound the parallel worker pool
package main

import (
	"flag"
	"fmt"
	"log"

	"teem/internal/buildinfo"
	"teem/internal/experiments"
	"teem/internal/mapping"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("teemeval: ")

	var (
		only    = flag.String("only", "", "run one experiment: fig1, fig5, memory, space, ablations")
		nBig    = flag.Int("big", 4, "Fig. 5 mapping: big cores")
		nLittle = flag.Int("little", 2, "Fig. 5 mapping: LITTLE cores")
		workers = flag.Int("workers", 0, "parallel experiment workers (0 = one per CPU, 1 = serial)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("teemeval"))
		return
	}

	env, err := experiments.NewEnvWith(experiments.Options{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	m := mapping.Mapping{Big: *nBig, Little: *nLittle, UseGPU: true}

	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("fig1", func() error {
		r, err := env.Fig1()
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		return nil
	})
	run("fig5", func() error {
		r, err := env.Fig5(m)
		if err != nil {
			return err
		}
		fmt.Println(r.RenderEnergy())
		fmt.Println(r.RenderTemperature())
		fmt.Println(r.RenderPerformance())
		return nil
	})
	run("memory", func() error {
		fmt.Println(env.Memory().Render())
		return nil
	})
	run("space", func() error {
		r, err := env.DesignSpace()
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		return nil
	})
	run("ablations", func() error {
		th, err := env.ThresholdSweep([]float64{80, 83, 85, 88, 91, 94})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSweep(
			"Ablation — software thermal threshold (paper default 85 °C)", "threshold (°C)", th))
		d, err := env.DeltaSweep([]int{100, 200, 400})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSweep(
			"Ablation — step-down δ (paper default 200 MHz)", "δ (MHz)", d))
		f, err := env.FloorSweep([]int{1000, 1200, 1400, 1600, 1800})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSweep(
			"Ablation — frequency floor (paper default 1400 MHz)", "floor (MHz)", f))
		return nil
	})
}
