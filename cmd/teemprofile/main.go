// Command teemprofile runs TEEM's offline phase for one application:
// profiling across the CPU mappings 1L+1B…4L+4B, the full regression fit
// (paper Table I), the log-transformed runtime model (Table II), the
// scatterplot matrix (Fig. 3) and the residual plot (Fig. 4), plus the
// stored-model footprint of §V.D.
//
// Usage:
//
//	teemprofile -app COVARIANCE
//	teemprofile -app SYRK -observations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"teem/internal/buildinfo"
	"teem/internal/core"
	"teem/internal/experiments"
	"teem/internal/mapping"
	"teem/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("teemprofile: ")

	var (
		appName  = flag.String("app", "COVARIANCE", "Polybench application name")
		showObs  = flag.Bool("observations", false, "print the raw profiling observations")
		savePath = flag.String("save", "", "write the runtime model store (JSON) to this file")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("teemprofile"))
		return
	}

	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	m, err := env.ProfileApp(*appName)
	if err != nil {
		log.Fatal(err)
	}

	if *showObs {
		t := &report.Table{
			Title:   fmt.Sprintf("profiling observations (%s)", *appName),
			Headers: []string{"mapping", "M", "AT (°C)", "PT (°C)", "ET (s)", "EC (J)"},
		}
		for _, o := range m.Model.Observations {
			t.AddRow(o.Map.String(),
				fmt.Sprintf("%.0f", o.M),
				fmt.Sprintf("%.1f", o.ATC),
				fmt.Sprintf("%.1f", o.PTC),
				fmt.Sprintf("%.1f", o.ETS),
				fmt.Sprintf("%.0f", o.ECJ))
		}
		fmt.Println(t.Render())
	}

	fmt.Println(m.Fig3())
	fmt.Println(m.TableI())
	fmt.Println(m.TableII())
	fmt.Println(m.Fig4())

	fmt.Printf("stored runtime model: %d bytes (%d coefficients + ETGPU %.1f s) — vs %d bytes for a %d-entry design-point table\n",
		m.Model.StorageBytes(), mapping.ModelCoefficients, m.Model.ETGPUSec,
		mapping.EEMPStorageBytes(), mapping.EEMPStoredItems())

	// Demonstrate an online decision with the fitted model.
	treq := m.Model.ETGPUSec / 2
	dec, err := env.Manager().Decide(*appName, treq, core.DefaultParams().ThresholdC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online decision for TREQ=%.1fs, AT=85°C: mapping %s, partition %s (predicted M=%.2f, WGCPU=%.3f)\n",
		treq, dec.Map, dec.Part, dec.PredictedM, dec.WGCPU)

	if *savePath != "" {
		st, err := env.Manager().Export()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := st.Save(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("runtime store written to %s (%d models; load with core.LoadStore + Manager.Import)\n",
			*savePath, len(st.Models))
	}
}
